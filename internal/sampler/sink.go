package sampler

import (
	"lightne/internal/aggregate"
	"lightne/internal/hashtable"
)

// Sink is the aggregation target a sampling pass accumulates into: the
// lock-free hash table mapping packed (u', v') keys to fixed-point weights,
// either as a single table or sharded across sub-tables routed by high hash
// bits (aggregate.NewShardedTable). The sampler only needs the insert hot
// path (AddFixed) plus the drain/introspection surface the downstream
// sparsifier hand-off uses.
//
// Both implementations produce bit-identical DrainCSR output for the same
// accumulated multiset: fixed-point accumulation is exact and commutative,
// and the fully-sorted radix grouping erases shard routing and slot order.
// DrainCSRPartial does NOT share that guarantee — columns within a row stay
// in (nondeterministic) slot/shard order — so it is reserved for SpMM-only
// consumers.
type Sink interface {
	// AddFixed accumulates a 44.20 fixed-point weight onto a packed key.
	// Safe for concurrent use.
	AddFixed(key, fixed uint64)
	// AddFixedBatch accumulates many (key, fixed-point weight) pairs at
	// once, parallelizing the inserts internally — equivalent to calling
	// AddFixed per pair. Sharded sinks radix-partition the batch on
	// hashtable.ShardOf first so each worker owns a shard range and the
	// atomic insert path runs contention-free; the single table falls back
	// to parallel chunks over the lock-free AddFixed. Safe for concurrent
	// use with AddFixed. len(keys) must equal len(fixed).
	AddFixedBatch(keys, fixed []uint64)
	// Get returns the accumulated weight for (u, v).
	Get(u, v uint32) (float64, bool)
	// Len returns the number of distinct keys.
	Len() int
	// MemoryBytes reports the sink's storage footprint.
	MemoryBytes() int64
	// PeakMemoryBytes reports the storage high-water mark over the sink's
	// lifetime, including grow transients where old and new slot arrays
	// coexist. >= MemoryBytes; equal when no growth occurred.
	PeakMemoryBytes() int64
	// Drain returns all entries as parallel slices (unordered). Must not be
	// called concurrently with AddFixed.
	Drain() (us, vs []uint32, ws []float64)
	// DrainCSR returns the entries grouped by source vertex with columns
	// sorted — a pure function of the accumulated multiset. Must not be
	// called concurrently with AddFixed.
	DrainCSR(numRows int) (rowPtr []int64, cols []uint32, ws []float64)
	// DrainCSRPartial is DrainCSR with partition-only grouping (columns
	// within a row unsorted); safe for SpMM-only consumers.
	DrainCSRPartial(numRows int) (rowPtr []int64, cols []uint32, ws []float64)
}

// Compile-time checks that both aggregation backends satisfy Sink.
var (
	_ Sink = (*hashtable.Table)(nil)
	_ Sink = (*aggregate.SharedTable)(nil)
)

// NewSink returns the aggregation sink for a sampling pass: the plain shared
// table for shards <= 1, or a sharded table (shards rounded up to a power of
// two) that confines grow-lock stalls to one shard when the capacity hint is
// wrong.
func NewSink(capacityHint, shards int) Sink {
	if shards <= 1 {
		return hashtable.New(capacityHint)
	}
	return aggregate.NewShardedTable(capacityHint, shards)
}
