package sampler

import (
	"fmt"
	"math"
	"testing"

	"lightne/internal/graph"
	"lightne/internal/par"
)

// Weighted batched walking: differential tests against the serial weighted
// Sample path and a chi-square goodness-of-fit harness for the keyed alias
// draws inside the wave walker.

// chiSquareCrit01 returns the upper 0.01 critical value of the chi-square
// distribution with df degrees of freedom via the Wilson–Hilferty cube
// approximation (z_{0.99} = 2.326): df·(1 − 2/(9df) + z·√(2/(9df)))³.
func chiSquareCrit01(df int) float64 {
	const z = 2.326
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// weightedStar builds a hub (vertex 0) with one leaf per weight, symmetrized
// so walks can leave and re-enter the hub.
func weightedStar(t testing.TB, weights []float64) *graph.Graph {
	t.Helper()
	arcs := make([]graph.WeightedEdge, len(weights))
	for i, w := range weights {
		arcs[i] = graph.WeightedEdge{U: 0, V: uint32(i + 1), W: w}
	}
	g, err := graph.FromWeightedEdges(len(weights)+1, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSampleBatchedWeightedT1ExactDifferential is the exact differential
// check the tentpole promises: at T = 1 the serial Sample path and the
// batched pipeline consume IDENTICAL per-vertex draw streams on weighted
// graphs — the same per-arc budget coins (⌊M·w_e/vol⌋ + Bernoulli(frac)),
// the same downsampling coins (ProbW over strengths), the same r and s
// draws, and zero walk draws (both remaining step counts are 0) — so the
// per-arc realized trial mass, the head set, and the drained aggregate must
// all be bit-identical, with and without downsampling.
func TestSampleBatchedWeightedT1ExactDifferential(t *testing.T) {
	g := weightedChordGraph(t, 120, 2, 7)
	n := g.NumVertices()
	for _, ds := range []bool{false, true} {
		cfg := Config{T: 1, M: 30_000, Downsample: ds, Seed: 5}
		plain, sa, err := Sample(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batched, sb, err := SampleBatched(g, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Trials != sb.Trials || sa.Heads != sb.Heads {
			t.Fatalf("downsample=%v: accounting differs: serial %d/%d vs batched %d/%d",
				ds, sa.Trials, sa.Heads, sb.Trials, sb.Heads)
		}
		pPtr, pCols, pWs := plain.DrainCSR(n)
		bPtr, bCols, bWs := batched.DrainCSR(n)
		if len(pCols) == 0 {
			t.Fatalf("downsample=%v: serial run produced an empty sparsifier", ds)
		}
		if len(pPtr) != len(bPtr) || len(pCols) != len(bCols) {
			t.Fatalf("downsample=%v: shape (%d,%d) vs (%d,%d)",
				ds, len(pPtr), len(pCols), len(bPtr), len(bCols))
		}
		for i := range pPtr {
			if pPtr[i] != bPtr[i] {
				t.Fatalf("downsample=%v: rowPtr[%d] = %d vs %d", ds, i, pPtr[i], bPtr[i])
			}
		}
		for i := range pCols {
			if pCols[i] != bCols[i] || pWs[i] != bWs[i] {
				t.Fatalf("downsample=%v: entry %d: (%d, %v) vs (%d, %v) — must be bit-identical",
					ds, i, pCols[i], pWs[i], bCols[i], bWs[i])
			}
		}
	}
}

// TestSampleBatchedWeightedExactAccounting extends the exact trial-mass
// equality to T > 1: with integer weights and M a multiple of vol(G), every
// arc's budget ⌊M·w_e/vol⌋ is exact (zero fractional coin) and without
// downsampling no coins are drawn at all, so Trials and Heads must equal
// the serial path's even though walk draws differ by design. Heavy
// aggregate entries then agree distributionally (estimates of the same
// expectation).
func TestSampleBatchedWeightedExactAccounting(t *testing.T) {
	var arcs []graph.WeightedEdge
	const n = 24
	for i := 0; i < n; i++ {
		arcs = append(arcs, graph.WeightedEdge{U: uint32(i), V: uint32((i + 1) % n), W: float64(1 + i%4)})
		arcs = append(arcs, graph.WeightedEdge{U: uint32(i), V: uint32((i + 7) % n), W: float64(1 + (i*3)%8)})
	}
	g, err := graph.FromWeightedEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vol := int64(g.TotalWeight())
	if float64(vol) != g.TotalWeight() {
		t.Fatalf("fixture volume %g is not integral", g.TotalWeight())
	}
	cfg := Config{T: 4, M: 900 * vol, Seed: 21}
	plain, sa, err := Sample(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, sb, err := SampleBatched(g, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Trials != sb.Trials || sa.Heads != sb.Heads {
		t.Fatalf("accounting differs: serial %d/%d vs batched %d/%d",
			sa.Trials, sa.Heads, sb.Trials, sb.Heads)
	}
	if sa.Trials != cfg.M {
		t.Fatalf("frac-free budget should realize exactly M=%d trials, got %d", cfg.M, sa.Trials)
	}
	us, vs, ws := plain.Drain()
	for i := range us {
		if ws[i] < 400 {
			continue
		}
		wb, ok := batched.Get(us[i], vs[i])
		if !ok {
			t.Fatalf("batched table missing heavy entry (%d,%d)", us[i], vs[i])
		}
		if math.Abs(wb-ws[i]) > 0.25*ws[i] {
			t.Fatalf("entry (%d,%d): serial %g vs batched %g", us[i], vs[i], ws[i], wb)
		}
	}
}

// TestRunWaveWeightedChiSquare is the goodness-of-fit harness for keyed
// alias draws in the wave walker itself: every head takes exactly one
// weighted step from a skewed star's hub, so the endpoint histogram is
// N independent single draws from the hub's alias table, each resolved
// from one rng.Hash64 keyed by (head, side, step). Pearson's chi-square
// against the normalized weights must accept at p > 0.01.
func TestRunWaveWeightedChiSquare(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 10, 25, 0.5, 1.5}
	g := weightedStar(t, weights)
	const N = 200_000
	wave := make([]headRec, N)
	for i := range wave {
		// side 0 starts at the hub with 1 step to take; side 1 finishes
		// immediately (0 steps) and stays parked at the hub.
		wave[i] = headRec{fixed: 1, e0: 0, e1: 0, s0: 1, s1: 0}
	}
	states := make([]uint64, 2*N)
	scratch := make([]uint64, 2*N)
	cursors := make([]graph.NeighborCursor, par.Workers())
	for i := range cursors {
		cursors[i] = g.NewNeighborCursor()
	}
	runWave(g, wave, states, scratch, cursors, 12345, 0)

	counts := make([]int64, len(weights)+1)
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, h := range wave {
		if h.e1 != 0 {
			t.Fatalf("head %d: zero-step side moved to %d", i, h.e1)
		}
		if h.e0 == 0 || int(h.e0) > len(weights) {
			t.Fatalf("head %d: one-step endpoint %d is not a leaf", i, h.e0)
		}
		counts[h.e0]++
	}
	var chi2 float64
	for i, w := range weights {
		exp := float64(N) * w / total
		d := float64(counts[i+1]) - exp
		chi2 += d * d / exp
	}
	crit := chiSquareCrit01(len(weights) - 1)
	if chi2 > crit {
		var obs string
		for i := range weights {
			obs += fmt.Sprintf(" leaf%d=%d", i+1, counts[i+1])
		}
		t.Fatalf("chi-square %.2f exceeds 0.01 critical value %.2f (df=%d):%s",
			chi2, crit, len(weights)-1, obs)
	}
}
