// Package sampler implements LightNE's sparsifier sampling: PathSampling
// (paper Algorithm 1) and the downsampled per-edge variant (Algorithm 2)
// with the degree-based downsampling probability
//
//	p_e = min(1, C·(1/d_u + 1/d_v)),   C = log n by default,
//
// which Theorem 3.2 (Lovász) justifies as an effective-resistance upper
// bound; Theorem 3.1 makes the reweighted samples (weight 1/p_e) an unbiased
// Laplacian estimator. Samples are aggregated in the concurrent hash table
// from internal/hashtable.
//
// The sampler maps over directed arcs grouped by source vertex, exactly the
// cache-friendly per-edge schedule of Algorithm 2: each arc e draws
// n_e = ⌊M/m⌋ + Bernoulli({M/m}) trials so that E[Σ n_e] = M without ever
// needing random access to a uniformly sampled edge (which compressed
// graphs cannot provide cheaply). Per-vertex RNG streams make the output
// distribution-identical and deterministic under any parallel schedule.
package sampler

import (
	"fmt"
	"math"
	"sync/atomic"

	"lightne/internal/graph"
	"lightne/internal/hashtable"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// atomicAdd is a tiny alias keeping the hot loop readable.
func atomicAdd(p *int64, v int64) { atomic.AddInt64(p, v) }

// logN is the paper's default downsampling constant C = log n, floored at 1.
func logN(n int) float64 {
	c := math.Log(float64(n))
	if c < 1 {
		c = 1
	}
	return c
}

// Config controls a sampling pass.
type Config struct {
	// T is the context window size (random-walk length bound). Samples draw
	// r uniformly from [1, T].
	T int
	// M is the target number of PathSampling trials (the paper's M).
	M int64
	// Downsample enables Algorithm 2's degree-based edge downsampling.
	Downsample bool
	// C is the downsampling constant; <= 0 selects log(n) (the paper's
	// choice). Ignored when Downsample is false.
	C float64
	// Seed makes runs reproducible.
	Seed uint64
	// TableSizeHint presizes the hash table; <= 0 derives an estimate.
	TableSizeHint int
	// Shards splits the aggregation table across a power of two of
	// sub-tables routed by high hash bits (see aggregate.NewShardedTable);
	// <= 1 keeps the single shared table. The drained CSR is bit-identical
	// either way.
	Shards int
}

// Stats reports what a sampling pass actually did.
type Stats struct {
	Trials          int64 // Σ_e n_e, the realized sample count M̂
	Heads           int64 // trials that passed the downsampling coin
	DistinctEntries int   // distinct (u',v') keys in the table
	TableBytes      int64 // hash table footprint after the pass
	PeakTableBytes  int64 // footprint high-water mark, incl. grow transients
}

// PathSample runs Algorithm 1: given arc (u, v) and walk length r, it splits
// r-1 remaining steps uniformly between the two endpoints and returns the
// walk's endpoints.
func PathSample(g *graph.Graph, u, v uint32, r int, src *rng.Source) (uint32, uint32) {
	s := src.Intn(r) // uniform in [0, r-1]
	uEnd := g.Walk(u, s, src)
	vEnd := g.Walk(v, r-1-s, src)
	return uEnd, vEnd
}

// Prob returns the downsampling probability p_e for an unweighted arc
// between vertices of the given degrees.
func Prob(c float64, du, dv int) float64 {
	return ProbW(c, 1, float64(du), float64(dv))
}

// ProbW returns the weighted downsampling probability
// p_e = min(1, C·A_uv·(1/d_u + 1/d_v)) with weighted degrees (paper §3.2).
func ProbW(c, w, su, sv float64) float64 {
	p := c * w * (1/su + 1/sv)
	if p > 1 {
		return 1
	}
	return p
}

// Sample runs the downsampled per-edge PathSampling pass over g and returns
// the aggregation sink plus statistics. The sink maps ordered pairs
// (u', v') to accumulated importance weights; every sample is inserted in
// both orientations so the aggregate is exactly symmetric.
func Sample(g *graph.Graph, cfg Config) (Sink, Stats, error) {
	n := g.NumVertices()
	arcs := g.NumEdges()
	if cfg.T <= 0 {
		return nil, Stats{}, fmt.Errorf("sampler: T must be positive, got %d", cfg.T)
	}
	if cfg.M <= 0 {
		return nil, Stats{}, fmt.Errorf("sampler: M must be positive, got %d", cfg.M)
	}
	if n == 0 || arcs == 0 {
		return nil, Stats{}, fmt.Errorf("sampler: graph has no edges")
	}
	c := cfg.C
	if cfg.Downsample && c <= 0 {
		c = logN(n)
	}

	// Per-arc trial budget. Unweighted: M/arcs each. Weighted: the paper's
	// PathSampling picks edges proportionally to weight, so arc e draws an
	// expected M·w_e/vol(G) trials.
	totalWeight := g.TotalWeight()
	perUnit := float64(cfg.M) / totalWeight
	strengths := g.Strengths()

	// Presize the table: expected heads ≈ M·E[p_e]; each head inserts two
	// oriented keys. Without downsampling every trial is a head.
	hint := cfg.TableSizeHint
	if hint <= 0 {
		headsEst := float64(cfg.M)
		if cfg.Downsample {
			// Σ_arcs p_e ≤ Σ_arcs C(1/du+1/dv) = 2nC, so the heads fraction
			// is at most 2nC/arcs.
			if cap := 2 * float64(n) * c / float64(arcs); cap < 1 {
				headsEst *= cap
			}
		}
		hint = int(2*headsEst) + 1024
	}
	table := NewSink(hint, cfg.Shards)

	var trials, heads int64
	par.ForRange(n, 32, func(lo, hi int) {
		var src rng.Source
		var localTrials, localHeads int64
		for ui := lo; ui < hi; ui++ {
			u := uint32(ui)
			du := g.Degree(u)
			if du == 0 {
				continue
			}
			src.Seed(cfg.Seed, uint64(u))
			for i := 0; i < du; i++ {
				v := g.Neighbor(u, i)
				ew := g.EdgeWeight(u, i)
				perArc := perUnit * ew
				ne := int64(perArc)
				if frac := perArc - float64(ne); frac > 0 && src.Bernoulli(frac) {
					ne++
				}
				if ne == 0 {
					continue
				}
				pe := 1.0
				if cfg.Downsample {
					pe = ProbW(c, ew, strengths[u], strengths[v])
				}
				fixed := hashtable.ToFixed(1 / pe)
				for k := int64(0); k < ne; k++ {
					localTrials++
					if pe < 1 && !src.Bernoulli(pe) {
						continue
					}
					localHeads++
					r := 1 + src.Intn(cfg.T)
					ue, ve := PathSample(g, u, v, r, &src)
					table.AddFixed(hashtable.Key(ue, ve), fixed)
					table.AddFixed(hashtable.Key(ve, ue), fixed)
				}
			}
		}
		atomicAdd(&trials, localTrials)
		atomicAdd(&heads, localHeads)
	})

	return table, Stats{
		Trials:          trials,
		Heads:           heads,
		DistinctEntries: table.Len(),
		TableBytes:      table.MemoryBytes(),
		PeakTableBytes:  table.PeakMemoryBytes(),
	}, nil
}

// SampleArcsInto runs downsampled PathSampling for the given arcs only,
// drawing perArc expected trials per arc and accumulating into an existing
// table. Walks run on g (which must already contain the arcs). This is the
// incremental path used by the dynamic embedder: when a batch of edges
// arrives, only the new arcs are sampled at the same per-arc rate as the
// initial pass.
//
// c is the downsampling constant; pass 0 to disable downsampling, or a
// positive value (typically log n) to enable it. The seed should differ
// per batch.
func SampleArcsInto(g *graph.Graph, table Sink, arcs []graph.Edge, perArc float64, t int, c float64, seed uint64) (Stats, error) {
	if t <= 0 {
		return Stats{}, fmt.Errorf("sampler: T must be positive, got %d", t)
	}
	if perArc < 0 {
		return Stats{}, fmt.Errorf("sampler: perArc must be non-negative, got %g", perArc)
	}
	base := int64(perArc)
	frac := perArc - float64(base)
	var trials, heads int64
	par.ForRange(len(arcs), 16, func(lo, hi int) {
		var src rng.Source
		var localTrials, localHeads int64
		for i := lo; i < hi; i++ {
			src.Seed(seed, uint64(i))
			u, v := arcs[i].U, arcs[i].V
			du, dv := g.Degree(u), g.Degree(v)
			if du == 0 || dv == 0 {
				continue
			}
			ne := base
			if frac > 0 && src.Bernoulli(frac) {
				ne++
			}
			if ne == 0 {
				continue
			}
			pe := 1.0
			if c > 0 {
				pe = Prob(c, du, dv)
			}
			fixed := hashtable.ToFixed(1 / pe)
			for k := int64(0); k < ne; k++ {
				localTrials++
				if pe < 1 && !src.Bernoulli(pe) {
					continue
				}
				localHeads++
				r := 1 + src.Intn(t)
				ue, ve := PathSample(g, u, v, r, &src)
				table.AddFixed(hashtable.Key(ue, ve), fixed)
				table.AddFixed(hashtable.Key(ve, ue), fixed)
			}
		}
		atomicAdd(&trials, localTrials)
		atomicAdd(&heads, localHeads)
	})
	return Stats{
		Trials:          trials,
		Heads:           heads,
		DistinctEntries: table.Len(),
		TableBytes:      table.MemoryBytes(),
		PeakTableBytes:  table.PeakMemoryBytes(),
	}, nil
}
