package sampler

import (
	"math"
	"testing"

	"lightne/internal/hashtable"
)

// streamFixture fills a table with a deterministic scatter of keys including
// empty rows, a heavy row, and duplicate accumulation.
func streamFixture(t *testing.T, n int) *hashtable.Table {
	t.Helper()
	tab := hashtable.New(1 << 10)
	s := uint64(99)
	for i := 0; i < 5000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		u := uint32(s>>40) % uint32(n)
		v := uint32(s>>8) % uint32(n)
		if i%7 == 0 {
			u = 3 // heavy row
		}
		tab.AddFixed(uint64(u)<<32|uint64(v), (s%1000)+1)
	}
	return tab
}

func TestChunkRowsBoundaries(t *testing.T) {
	// Rows with entry counts 3, 0, 5, 10, 1, 0.
	rowPtr := []int64{0, 3, 3, 8, 18, 19, 19}
	for _, tc := range []struct {
		max  int64
		want []int
	}{
		{1 << 30, []int{0, 6}},       // everything fits in one chunk
		{8, []int{0, 3, 4, 6}},       // rows {0,1,2}, oversized {3}, {4,5}
		{1, []int{0, 1, 2, 3, 4, 6}}, // row-at-a-time; only trailing empty row 5 merges
		{0, []int{0, 1, 2, 3, 4, 6}}, // max < 1 clamps to 1
		{3, []int{0, 2, 3, 4, 6}},    // row 0 + empty row 1, then {2}, {3}, {4,5}
	} {
		got := ChunkRows(rowPtr, tc.max)
		if len(got) != len(tc.want) {
			t.Fatalf("max=%d: bounds %v want %v", tc.max, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("max=%d: bounds %v want %v", tc.max, got, tc.want)
			}
		}
		// Every chunk respects the cap unless it is a single oversized row.
		max := tc.max
		if max < 1 {
			max = 1
		}
		for c := 0; c+1 < len(got); c++ {
			lo, hi := got[c], got[c+1]
			if n := rowPtr[hi] - rowPtr[lo]; n > max && hi-lo > 1 {
				t.Fatalf("max=%d: chunk [%d,%d) holds %d entries", tc.max, lo, hi, n)
			}
		}
	}
	if got := ChunkRows([]int64{0}, 4); len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty matrix bounds %v", got)
	}
}

// TestStreamCSREquivalence pins the streaming contract: for every chunk size
// the concatenation of emitted chunks is exactly the DrainCSR output, chunks
// arrive in row order, and the total matches.
func TestStreamCSREquivalence(t *testing.T) {
	const n = 64
	wantRowPtr, wantCols, wantWs := streamFixture(t, n).DrainCSR(n)

	for _, max := range []int64{1, 13, 100, 1 << 40} {
		tab := streamFixture(t, n)
		nextRow := 0
		var seen int64
		total := StreamCSR(tab, n, max, func(lo, hi int, rowPtr []int64, cols []uint32, ws []float64) {
			if lo != nextRow {
				t.Fatalf("max=%d: chunk starts at %d, want %d", max, lo, nextRow)
			}
			nextRow = hi
			for r := lo; r <= hi; r++ {
				if rowPtr[r] != wantRowPtr[r] {
					t.Fatalf("max=%d: rowPtr[%d] differs", max, r)
				}
			}
			for p := rowPtr[lo]; p < rowPtr[hi]; p++ {
				if cols[p] != wantCols[p] || math.Float64bits(ws[p]) != math.Float64bits(wantWs[p]) {
					t.Fatalf("max=%d: entry %d differs", max, p)
				}
			}
			seen += rowPtr[hi] - rowPtr[lo]
		})
		if nextRow != n {
			t.Fatalf("max=%d: chunks stopped at row %d", max, nextRow)
		}
		if total != wantRowPtr[n] || seen != total {
			t.Fatalf("max=%d: total %d seen %d want %d", max, total, seen, wantRowPtr[n])
		}
	}
}
