package sampler

import (
	"math"
	"testing"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

func TestArcSamplersUniform(t *testing.T) {
	// Irregular graph: star + ring; arc frequencies must be uniform over
	// directed arcs for both strategies.
	var arcs []graph.Edge
	n := 20
	for i := 1; i < n; i++ {
		arcs = append(arcs, graph.Edge{U: 0, V: uint32(i)})
	}
	for i := 1; i < n-1; i++ {
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32(i + 1)})
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := int(g.NumEdges())
	samplers := map[string]ArcSampler{
		"array":  NewArrayArcSampler(g),
		"search": NewSearchArcSampler(g),
	}
	for name, s := range samplers {
		src := rng.New(3, 0)
		counts := map[uint64]int{}
		const draws = 200000
		for i := 0; i < draws; i++ {
			u, v := s.Arc(src)
			// The drawn pair must be a real arc.
			found := false
			for _, nb := range g.Neighbors(u, nil) {
				if nb == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: (%d,%d) is not an arc", name, u, v)
			}
			counts[uint64(u)<<32|uint64(v)]++
		}
		want := float64(draws) / float64(m)
		for k, c := range counts {
			if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
				t.Fatalf("%s: arc %d drawn %d times, want ≈ %.0f", name, k, c, want)
			}
		}
		if len(counts) != m {
			t.Fatalf("%s: only %d/%d arcs ever drawn", name, len(counts), m)
		}
	}
}

func TestArrayAndSearchMemoryContrast(t *testing.T) {
	g := completeGraph(t, 40)
	arr := NewArrayArcSampler(g)
	search := NewSearchArcSampler(g)
	if arr.MemoryBytes() != g.NumEdges()*8 {
		t.Fatalf("array memory %d want %d", arr.MemoryBytes(), g.NumEdges()*8)
	}
	if search.MemoryBytes() != 0 {
		t.Fatal("search sampler should need no extra memory")
	}
}

func TestSampleUniformMatchesPerEdgeDistribution(t *testing.T) {
	// The per-edge schedule (Sample) and the textbook uniform-arc process
	// (SampleUniform) are distribution-equivalent: their aggregated tables
	// must agree entry-wise up to sampling noise.
	g := completeGraph(t, 16)
	cfg := Config{T: 3, M: 1_500_000, Seed: 9}
	perEdge, statsA, err := Sample(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniform, statsB, err := SampleUniform(g, cfg, NewArrayArcSampler(g))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(statsA.Trials)-float64(statsB.Trials)) > 0.05*float64(cfg.M) {
		t.Fatalf("trial counts diverge: %d vs %d", statsA.Trials, statsB.Trials)
	}
	us, vs, ws := perEdge.Drain()
	for i := range us {
		if ws[i] < 50 {
			continue // skip entries too rare to compare statistically
		}
		wb, ok := uniform.Get(us[i], vs[i])
		if !ok {
			t.Fatalf("uniform table missing well-sampled entry (%d,%d)", us[i], vs[i])
		}
		if math.Abs(wb-ws[i]) > 0.25*ws[i] {
			t.Fatalf("entry (%d,%d): per-edge %g vs uniform %g", us[i], vs[i], ws[i], wb)
		}
	}
}

func TestSampleUniformDownsampling(t *testing.T) {
	g := completeGraph(t, 40)
	tab, stats, err := SampleUniform(g, Config{T: 2, M: 100_000, Downsample: true, Seed: 4}, NewSearchArcSampler(g))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Heads >= stats.Trials {
		t.Fatal("downsampling skipped nothing on K40")
	}
	if tab.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestSampleUniformErrors(t *testing.T) {
	g := completeGraph(t, 5)
	arr := NewArrayArcSampler(g)
	if _, _, err := SampleUniform(g, Config{T: 0, M: 10}, arr); err == nil {
		t.Fatal("expected T error")
	}
	if _, _, err := SampleUniform(g, Config{T: 2, M: 0}, arr); err == nil {
		t.Fatal("expected M error")
	}
	wg, err := graph.FromWeightedEdges(3, []graph.WeightedEdge{{U: 0, V: 1, W: 2}}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SampleUniform(wg, Config{T: 2, M: 10}, NewSearchArcSampler(wg)); err == nil {
		t.Fatal("expected weighted-graph rejection")
	}
}
