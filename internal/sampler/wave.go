package sampler

import (
	"math/bits"

	"lightne/internal/graph"
	"lightne/internal/par"
	"lightne/internal/radix"
	"lightne/internal/rng"
)

// Stage 2 of the wave pipeline: lock-step wave walking.
//
// runWave advances every walk of one wave to completion. Between steps the
// packed states are radix-grouped by their current vertex (the locality
// batching of §4.2) — a *partial* sort over only the bytes holding the
// vertex id, since within-group order is irrelevant — and finished states
// are compacted out with the same count/scan/fill shape as the drain path,
// replacing the serial tombstone sweep.
//
// Every walk step is one keyed-hash draw: rng.Hash64(seed^walkSeedTag,
// ghead<<10 | step<<1 | side) yields 64 uniform bits, reduced to a neighbor
// index by a multiply-shift (bias < degree/2^64, i.e. < 2^-32 for 32-bit
// vertex ids — far below the sampler's statistical noise). On weighted
// graphs the same single draw resolves a Vose alias-table lookup instead:
// high bits pick the slot, low 32 bits are the acceptance coin (see
// graph.AliasNeighbor and DESIGN.md "Weighted walking"). Either way draws
// are unique per (head, side, step) and depend on nothing but the
// head's identity, which makes endpoints a pure function of (graph, seed,
// heads) — independent of wave membership (waveSize), chunk geometry
// (GOMAXPROCS) and state order (the grouping). Earlier revisions built a
// full xoshiro stream per draw (four SplitMix64 finalizations plus a
// rejection loop) to get the same guarantee; the single-mix hash keeps it
// at roughly a quarter of the seeding cost — the ~13% single-core
// determinism tax ROADMAP carried. The serial-flush reference seeds streams
// per chunk instead, which ties its output to the worker count.

// walkSeedTag distinguishes walk-step streams from enumeration streams.
const walkSeedTag = 0xba7c4ed

const (
	walkGrain    = 1024
	compactGrain = 4096
)

// runWave walks one wave to completion, overwriting each head's (e0, e1)
// with its walk endpoints. states and scratch are caller-owned buffers of
// length >= 2*len(wave), reused across waves; base is the wave's first
// global head index; cursors holds one NeighborCursor per worker index
// (len >= par.Workers()), reused across rounds and waves.
//
// Because states are radix-grouped by current vertex before each round, the
// advance loop sees runs of states parked at the same vertex. Each worker
// walks its chunk run by run and positions its NeighborCursor once per run:
// on compressed graphs that decodes each needed block once per group (a full
// sequential decode when the run covers the adjacency, a cached single-block
// decode otherwise) instead of re-decoding a block prefix per state — the
// difference between O(states x blockSize) and O(blocks touched) varint work
// per vertex per round. On uncompressed graphs the cursor is a plain slice
// view and the loop is unchanged in cost. Draws stay keyed by (head, side,
// step), so the grouping, chunking and cursor strategy cannot affect output.
func runWave(g *graph.Graph, wave []headRec, states, scratch []uint64, cursors []graph.NeighborCursor, seed, base uint64) {
	n := 2 * len(wave)
	if n == 0 {
		return
	}
	par.ForRange(len(wave), walkGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h := wave[i]
			states[2*i] = packState(h.e0, int(h.s0), 0, i)
			states[2*i+1] = packState(h.e1, int(h.s1), 1, i)
		}
	})

	// The current vertex lives in the top 32 bits; only the bytes that can
	// be nonzero for vertex ids < NumVertices need counting passes.
	curBytes := (bits.Len32(uint32(g.NumVertices()-1)) + 7) / 8
	if curBytes == 0 {
		curBytes = 1
	}

	walkSeed := seed ^ walkSeedTag
	weighted := g.Weighted()
	for round := 0; n > 0; round++ {
		radix.SortBytesBuf(states[:n], scratch, 4, 4+curBytes)
		par.WorkerFor(n, walkGrain, func(worker, lo, hi int) {
			nc := &cursors[worker]
			for rs := lo; rs < hi; {
				cur := uint32(states[rs] >> batchCurOff)
				re := rs + 1
				for re < hi && uint32(states[re]>>batchCurOff) == cur {
					re++
				}
				d := g.Degree(cur)
				begun := false
				for i := rs; i < re; i++ {
					st := states[i]
					steps := int(st>>batchStepOff) & (1<<batchStepBits - 1)
					head := int(st & (maxWaveHeads - 1))
					side := st >> batchSideBit & 1
					if steps == 0 {
						if side == 0 {
							wave[head].e0 = cur
						} else {
							wave[head].e1 = cur
						}
						states[i] = stateTombstone
						continue
					}
					// step index == round: all live states advance once per
					// round.
					next := cur // isolated: stay (cannot happen on symmetric graphs)
					if d > 0 {
						if !begun {
							// Position once per run; the cursor picks a full
							// decode vs lazy per-block strategy from the run
							// size.
							nc.Begin(cur, re-rs)
							begun = true
						}
						draw := rng.Hash64(walkSeed, (base+uint64(head))<<10|uint64(round)<<1|side)
						if weighted {
							next = nc.AliasNeighbor(draw)
						} else {
							pick, _ := bits.Mul64(draw, uint64(d))
							next = nc.Neighbor(int(pick))
						}
					}
					states[i] = packState(next, steps-1, int(side), head)
				}
				rs = re
			}
		})
		n = compactStates(states[:n], scratch)
		states, scratch = scratch, states
	}
}

// compactStates writes src's live (non-tombstone) states into dst in order
// and returns how many there are: per-block live counts, an exclusive scan
// for stable offsets, and an exact-fit parallel fill — the same two-pass
// shape as the hash-table drain, replacing the serial sweep that used to
// serialize every round.
func compactStates(src, dst []uint64) int {
	bounds := par.Blocks(len(src), compactGrain)
	nb := len(bounds) - 1
	if nb <= 1 {
		out := 0
		for _, st := range src {
			if st != stateTombstone {
				dst[out] = st
				out++
			}
		}
		return out
	}
	counts := make([]int64, nb)
	par.ForBlocks(bounds, func(b, lo, hi int) {
		var c int64
		for i := lo; i < hi; i++ {
			if src[i] != stateTombstone {
				c++
			}
		}
		counts[b] = c
	})
	total := par.ExclusiveScan(counts)
	par.ForBlocks(bounds, func(b, lo, hi int) {
		w := counts[b]
		for i := lo; i < hi; i++ {
			if src[i] != stateTombstone {
				dst[w] = src[i]
				w++
			}
		}
	})
	return int(total)
}
