package sampler

import (
	"math"
	"testing"

	"lightne/internal/graph"
)

func TestPackStateRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		cur   uint32
		steps int
		side  int
		head  int
	}{
		{0, 0, 0, 0},
		{12345, 511, 1, maxWaveHeads - 1},
		{1 << 31, 7, 0, 42},
	} {
		st := packState(tc.cur, tc.steps, tc.side, tc.head)
		if uint32(st>>batchCurOff) != tc.cur {
			t.Fatalf("cur mismatch: %+v", tc)
		}
		if int(st>>batchStepOff)&(1<<batchStepBits-1) != tc.steps {
			t.Fatalf("steps mismatch: %+v", tc)
		}
		if int(st>>batchSideBit)&1 != tc.side {
			t.Fatalf("side mismatch: %+v", tc)
		}
		if int(st&(maxWaveHeads-1)) != tc.head {
			t.Fatalf("head mismatch: %+v", tc)
		}
	}
}

func TestSampleBatchedMatchesSampleDistribution(t *testing.T) {
	g := completeGraph(t, 16)
	cfg := Config{T: 3, M: 1_500_000, Seed: 9}
	plain, statsA, err := Sample(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, statsB, err := SampleBatched(g, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Identical arc enumeration seeds → identical trial/head counts.
	if statsA.Trials != statsB.Trials || statsA.Heads != statsB.Heads {
		t.Fatalf("trial accounting differs: %d/%d vs %d/%d",
			statsA.Trials, statsA.Heads, statsB.Trials, statsB.Heads)
	}
	us, vs, ws := plain.Drain()
	for i := range us {
		if ws[i] < 50 {
			continue
		}
		wb, ok := batched.Get(us[i], vs[i])
		if !ok {
			t.Fatalf("batched table missing entry (%d,%d)", us[i], vs[i])
		}
		if math.Abs(wb-ws[i]) > 0.25*ws[i] {
			t.Fatalf("entry (%d,%d): plain %g vs batched %g", us[i], vs[i], ws[i], wb)
		}
	}
}

func TestSampleBatchedSmallWaves(t *testing.T) {
	// Tiny waves force many flushes; totals must be conserved exactly.
	g := cycleGraph(t, 12)
	cfg := Config{T: 4, M: 50_000, Downsample: true, C: 1, Seed: 11}
	tab, stats, err := SampleBatched(g, cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ws := tab.Drain()
	var total float64
	for _, w := range ws {
		total += w
	}
	// Each head adds 2·(1/p_e); expectation of the sum is 2·Trials.
	want := 2 * float64(stats.Trials)
	if math.Abs(total-want) > 0.05*want {
		t.Fatalf("total mass %.0f want ≈ %.0f", total, want)
	}
}

func TestSampleBatchedSymmetric(t *testing.T) {
	g := completeGraph(t, 10)
	tab, _, err := SampleBatched(g, Config{T: 3, M: 40_000, Seed: 13}, 0)
	if err != nil {
		t.Fatal(err)
	}
	us, vs, _ := tab.Drain()
	for i := range us {
		wa, _ := tab.Get(us[i], vs[i])
		wb, ok := tab.Get(vs[i], us[i])
		if !ok || math.Abs(wa-wb) > 1e-6 {
			t.Fatalf("asymmetry at (%d,%d)", us[i], vs[i])
		}
	}
}

func TestSampleBatchedErrors(t *testing.T) {
	g := cycleGraph(t, 6)
	if _, _, err := SampleBatched(g, Config{T: 0, M: 10}, 0); err == nil {
		t.Fatal("expected T error")
	}
	if _, _, err := SampleBatched(g, Config{T: 600, M: 10}, 0); err == nil {
		t.Fatal("expected T cap error")
	}
	if _, _, err := SampleBatched(g, Config{T: 2, M: 0}, 0); err == nil {
		t.Fatal("expected M error")
	}
	wg, err := graph.FromWeightedEdges(3, []graph.WeightedEdge{{U: 0, V: 1, W: 2}}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SampleBatched(wg, Config{T: 2, M: 10}, 0); err == nil {
		t.Fatal("expected weighted rejection")
	}
}

func TestSampleBatchedParityOnCycle(t *testing.T) {
	// Path-parity invariant must survive the batched schedule (endpoints of
	// an (r-1)-step split walk on a bipartite cycle keep the sample's
	// parity): with T=1, samples are exactly the original arcs.
	g := cycleGraph(t, 8)
	tab, _, err := SampleBatched(g, Config{T: 1, M: 20_000, Seed: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	us, vs, _ := tab.Drain()
	for i := range us {
		diff := (int(us[i]) - int(vs[i]) + 8) % 8
		if diff != 1 && diff != 7 {
			t.Fatalf("T=1 batched sample (%d,%d) is not an original edge", us[i], vs[i])
		}
	}
}
