package sampler

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

// chordGraph builds a connected random graph: a cycle backbone plus extra
// random chords, deduplicated — degree-skewed enough to exercise the
// enumeration's block geometry.
func chordGraph(t testing.TB, n, extraPerVertex int, seed uint64) *graph.Graph {
	t.Helper()
	s := rng.New(seed, 0)
	seen := make(map[[2]uint32]bool)
	var arcs []graph.Edge
	add := func(u, v uint32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]uint32{u, v}] {
			return
		}
		seen[[2]uint32{u, v}] = true
		arcs = append(arcs, graph.Edge{U: u, V: v})
	}
	for i := 0; i < n; i++ {
		add(uint32(i), uint32((i+1)%n))
		for k := 0; k < extraPerVertex; k++ {
			add(uint32(i), uint32(s.Intn(n)))
		}
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// weightedChordGraph is chordGraph's weighted twin: same topology process,
// with deterministic per-edge weights spanning a ~20x range so alias tables
// are far from uniform.
func weightedChordGraph(t testing.TB, n, extraPerVertex int, seed uint64) *graph.Graph {
	t.Helper()
	s := rng.New(seed, 0)
	seen := make(map[[2]uint32]bool)
	var arcs []graph.WeightedEdge
	add := func(u, v uint32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]uint32{u, v}] {
			return
		}
		seen[[2]uint32{u, v}] = true
		arcs = append(arcs, graph.WeightedEdge{U: u, V: v, W: 0.25 + 4.75*s.Float64()})
	}
	for i := 0; i < n; i++ {
		add(uint32(i), uint32((i+1)%n))
		for k := 0; k < extraPerVertex; k++ {
			add(uint32(i), uint32(s.Intn(n)))
		}
	}
	g, err := graph.FromWeightedEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPackStateRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		cur   uint32
		steps int
		side  int
		head  int
	}{
		{0, 0, 0, 0},
		{12345, 511, 1, maxWaveHeads - 1},
		{1 << 31, 7, 0, 42},
	} {
		st := packState(tc.cur, tc.steps, tc.side, tc.head)
		if uint32(st>>batchCurOff) != tc.cur {
			t.Fatalf("cur mismatch: %+v", tc)
		}
		if int(st>>batchStepOff)&(1<<batchStepBits-1) != tc.steps {
			t.Fatalf("steps mismatch: %+v", tc)
		}
		if int(st>>batchSideBit)&1 != tc.side {
			t.Fatalf("side mismatch: %+v", tc)
		}
		if int(st&(maxWaveHeads-1)) != tc.head {
			t.Fatalf("head mismatch: %+v", tc)
		}
	}
}

func TestSampleBatchedMatchesSampleDistribution(t *testing.T) {
	g := completeGraph(t, 16)
	cfg := Config{T: 3, M: 1_500_000, Seed: 9}
	plain, statsA, err := Sample(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, statsB, err := SampleBatched(g, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Identical arc enumeration seeds → identical trial/head counts.
	if statsA.Trials != statsB.Trials || statsA.Heads != statsB.Heads {
		t.Fatalf("trial accounting differs: %d/%d vs %d/%d",
			statsA.Trials, statsA.Heads, statsB.Trials, statsB.Heads)
	}
	us, vs, ws := plain.Drain()
	for i := range us {
		if ws[i] < 50 {
			continue
		}
		wb, ok := batched.Get(us[i], vs[i])
		if !ok {
			t.Fatalf("batched table missing entry (%d,%d)", us[i], vs[i])
		}
		if math.Abs(wb-ws[i]) > 0.25*ws[i] {
			t.Fatalf("entry (%d,%d): plain %g vs batched %g", us[i], vs[i], ws[i], wb)
		}
	}
}

func TestSampleBatchedSmallWaves(t *testing.T) {
	// Tiny waves force many flushes; totals must be conserved exactly.
	g := cycleGraph(t, 12)
	cfg := Config{T: 4, M: 50_000, Downsample: true, C: 1, Seed: 11}
	tab, stats, err := SampleBatched(g, cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ws := tab.Drain()
	var total float64
	for _, w := range ws {
		total += w
	}
	// Each head adds 2·(1/p_e); expectation of the sum is 2·Trials.
	want := 2 * float64(stats.Trials)
	if math.Abs(total-want) > 0.05*want {
		t.Fatalf("total mass %.0f want ≈ %.0f", total, want)
	}
}

func TestSampleBatchedSymmetric(t *testing.T) {
	g := completeGraph(t, 10)
	tab, _, err := SampleBatched(g, Config{T: 3, M: 40_000, Seed: 13}, 0)
	if err != nil {
		t.Fatal(err)
	}
	us, vs, _ := tab.Drain()
	for i := range us {
		wa, _ := tab.Get(us[i], vs[i])
		wb, ok := tab.Get(vs[i], us[i])
		if !ok || math.Abs(wa-wb) > 1e-6 {
			t.Fatalf("asymmetry at (%d,%d)", us[i], vs[i])
		}
	}
}

func TestSampleBatchedErrors(t *testing.T) {
	g := cycleGraph(t, 6)
	if _, _, err := SampleBatched(g, Config{T: 0, M: 10}, 0); err == nil {
		t.Fatal("expected T error")
	}
	if _, _, err := SampleBatched(g, Config{T: 600, M: 10}, 0); err == nil {
		t.Fatal("expected T cap error")
	}
	if _, _, err := SampleBatched(g, Config{T: 2, M: 0}, 0); err == nil {
		t.Fatal("expected M error")
	}
	// Weighted graphs are accepted: the wave walker resolves alias tables
	// from the same keyed draws (this rejection used to be the last gap).
	wg, err := graph.FromWeightedEdges(3, []graph.WeightedEdge{{U: 0, V: 1, W: 2}}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab, stats, err := SampleBatched(wg, Config{T: 2, M: 10, Seed: 1}, 0)
	if err != nil {
		t.Fatalf("weighted batched walking: %v", err)
	}
	if stats.Trials == 0 || tab.Len() == 0 {
		t.Fatal("weighted batched run produced nothing")
	}
}

func TestSampleBatchedParityOnCycle(t *testing.T) {
	// Path-parity invariant must survive the batched schedule (endpoints of
	// an (r-1)-step split walk on a bipartite cycle keep the sample's
	// parity): with T=1, samples are exactly the original arcs.
	g := cycleGraph(t, 8)
	tab, _, err := SampleBatched(g, Config{T: 1, M: 20_000, Seed: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	us, vs, _ := tab.Drain()
	for i := range us {
		diff := (int(us[i]) - int(vs[i]) + 8) % 8
		if diff != 1 && diff != 7 {
			t.Fatalf("T=1 batched sample (%d,%d) is not an original edge", us[i], vs[i])
		}
	}
}

// TestSampleBatchedGoldenAcrossGeometry locks down the pipeline's central
// determinism guarantee: the drained sparsifier input is a pure function of
// (graph structure, config) — bit-identical across wave size, shard count,
// worker count, AND adjacency representation (raw CSR vs parallel-byte
// compressed at any block size). Per-vertex enumeration streams plus
// per-(head, side, step) walk streams make every draw independent of the
// execution geometry, and the wave-local cursor decode only changes how a
// neighbor is fetched, never which one.
func TestSampleBatchedGoldenAcrossGeometry(t *testing.T) {
	g := chordGraph(t, 300, 3, 42)
	cfg := Config{T: 6, M: 120_000, Downsample: true, Seed: 99}
	n := g.NumVertices()
	// Compressed twins: block size 2 keeps most runs on the lazy per-block
	// cursor path, the default block size (64 > max degree here) forces the
	// full-decode path. Both must reproduce the raw graph's bits.
	gc2, err := g.ToCompressed(2)
	if err != nil {
		t.Fatal(err)
	}
	gcDef, err := g.ToCompressed(0)
	if err != nil {
		t.Fatal(err)
	}
	build := func(gr *graph.Graph, waveSize, shards, procs int) ([]int64, []uint32, []float64) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		c := cfg
		c.Shards = shards
		tab, _, err := SampleBatched(gr, c, waveSize)
		if err != nil {
			t.Fatalf("wave=%d shards=%d procs=%d: %v", waveSize, shards, procs, err)
		}
		rowPtr, cols, ws := tab.DrainCSR(n)
		return rowPtr, cols, ws
	}
	compare := func(name string, rowPtr, goldPtr []int64, cols, goldCols []uint32, ws, goldWs []float64) {
		if len(rowPtr) != len(goldPtr) || len(cols) != len(goldCols) {
			t.Fatalf("%s: shape (%d,%d) differs from golden (%d,%d)",
				name, len(rowPtr), len(cols), len(goldPtr), len(goldCols))
		}
		for i := range rowPtr {
			if rowPtr[i] != goldPtr[i] {
				t.Fatalf("%s: rowPtr[%d] = %d, golden %d", name, i, rowPtr[i], goldPtr[i])
			}
		}
		for i := range cols {
			if cols[i] != goldCols[i] {
				t.Fatalf("%s: cols[%d] = %d, golden %d", name, i, cols[i], goldCols[i])
			}
			if ws[i] != goldWs[i] {
				t.Fatalf("%s: ws[%d] = %v, golden %v (must be bit-identical)",
					name, i, ws[i], goldWs[i])
			}
		}
	}
	goldPtr, goldCols, goldWs := build(g, 0, 1, 1)
	if len(goldCols) == 0 {
		t.Fatal("golden run produced an empty sparsifier")
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{{"raw", g}, {"compressed-bs2", gc2}, {"compressed-default", gcDef}}
	for _, gv := range graphs {
		for _, waveSize := range []int{0, 1024, 4097} {
			for _, shards := range []int{1, 4} {
				for _, procs := range []int{1, 4} {
					if gv.g == g && waveSize == 0 && shards == 1 && procs == 1 {
						continue
					}
					name := fmt.Sprintf("%s/wave=%d/shards=%d/procs=%d", gv.name, waveSize, shards, procs)
					rowPtr, cols, ws := build(gv.g, waveSize, shards, procs)
					compare(name, rowPtr, goldPtr, cols, goldCols, ws, goldWs)
				}
			}
		}
	}

	// Weighted fixture: keyed alias draws must deliver the same guarantee.
	// No compressed twins (weighted graphs reject compression); the sweep is
	// the same waveSize × shards × procs grid against a weighted golden.
	wg := weightedChordGraph(t, 300, 3, 43)
	wGoldPtr, wGoldCols, wGoldWs := build(wg, 0, 1, 1)
	if len(wGoldCols) == 0 {
		t.Fatal("weighted golden run produced an empty sparsifier")
	}
	for _, waveSize := range []int{0, 1024, 4097} {
		for _, shards := range []int{1, 4} {
			for _, procs := range []int{1, 4} {
				if waveSize == 0 && shards == 1 && procs == 1 {
					continue
				}
				name := fmt.Sprintf("weighted/wave=%d/shards=%d/procs=%d", waveSize, shards, procs)
				rowPtr, cols, ws := build(wg, waveSize, shards, procs)
				compare(name, rowPtr, wGoldPtr, cols, wGoldCols, ws, wGoldWs)
			}
		}
	}
}

// TestSampleBatchedMatchesSerialFlush compares the pipeline against the
// retained pre-pipeline implementation: enumeration draws are identical
// (exact Trials/Heads equality), total inserted mass is conserved exactly,
// and heavy entries agree distributionally (walk streams differ by design,
// so per-entry weights are estimates of the same expectation).
func TestSampleBatchedMatchesSerialFlush(t *testing.T) {
	g := chordGraph(t, 200, 2, 17)
	cfg := Config{T: 5, M: 150_000, Downsample: true, Seed: 31}
	serialTab, serialStats, err := SampleBatchedSerial(g, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipeTab, pipeStats, err := SampleBatched(g, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if serialStats.Trials != pipeStats.Trials || serialStats.Heads != pipeStats.Heads {
		t.Fatalf("enumeration accounting differs: serial %d/%d vs pipeline %d/%d",
			serialStats.Trials, serialStats.Heads, pipeStats.Trials, pipeStats.Heads)
	}
	sum := func(tab Sink) float64 {
		_, _, ws := tab.Drain()
		var s float64
		for _, w := range ws {
			s += w
		}
		return s
	}
	sSum, pSum := sum(serialTab), sum(pipeTab)
	// Both insert exactly the same multiset of 1/p_e weights (twice per head);
	// fixed-point accumulation is exact, so the totals match to fixed-point
	// resolution regardless of walk endpoints.
	if math.Abs(sSum-pSum) > 1e-6*(1+sSum) {
		t.Fatalf("total mass differs: serial %.9g vs pipeline %.9g", sSum, pSum)
	}
	us, vs, ws := serialTab.Drain()
	heavy, agree := 0, 0
	for i := range us {
		if ws[i] < 60 {
			continue
		}
		heavy++
		wp, ok := pipeTab.Get(us[i], vs[i])
		if ok && math.Abs(wp-ws[i]) <= 0.3*ws[i] {
			agree++
		}
	}
	if heavy > 0 && agree < heavy*9/10 {
		t.Fatalf("heavy entries disagree: %d/%d within 30%%", agree, heavy)
	}
}

// TestSampleBatchedStressGrowMidDrain forces table grows to race the walking
// stage: an absurd size hint makes every wave's sharded (and single-table)
// batch insert trigger doubling rehashes while the next wave walks. Run
// under -race this is the pipeline's concurrency certificate; in any mode it
// checks conservation and peak accounting.
func TestSampleBatchedStressGrowMidDrain(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	fixtures := []struct {
		name string
		g    *graph.Graph
	}{
		{"unweighted", chordGraph(t, 150, 2, 5)},
		{"weighted", weightedChordGraph(t, 150, 2, 5)},
	}
	for _, fx := range fixtures {
		for _, shards := range []int{1, 4} {
			cfg := Config{
				T: 4, M: 60_000, Downsample: true, Seed: 3,
				TableSizeHint: 16, // forces a long chain of grows mid-drain
				Shards:        shards,
			}
			tab, stats, err := SampleBatched(fx.g, cfg, 256)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", fx.name, shards, err)
			}
			if tab.Len() == 0 || stats.Heads == 0 {
				t.Fatalf("%s shards=%d: empty run", fx.name, shards)
			}
			if stats.PeakTableBytes <= stats.TableBytes {
				t.Fatalf("%s shards=%d: hint did not force a grow (peak %d steady %d)",
					fx.name, shards, stats.PeakTableBytes, stats.TableBytes)
			}
			_, _, ws := tab.Drain()
			var total float64
			for _, w := range ws {
				total += w
			}
			want := 2 * float64(stats.Trials)
			if math.Abs(total-want) > 0.05*want {
				t.Fatalf("%s shards=%d: total mass %.0f want ~%.0f", fx.name, shards, total, want)
			}
		}
	}
}
