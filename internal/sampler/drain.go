package sampler

import (
	"lightne/internal/hashtable"
	"lightne/internal/par"
)

// Stage 3 of the wave pipeline: sink insertion.
//
// A finished wave's heads are turned into the two oriented (key, fixed)
// pairs each head deposits and handed to the Sink's bulk path. The stage
// runs on its own goroutine so that inserting wave k overlaps walking wave
// k+1 — the overlap that keeps the machine saturated where the serial-flush
// sampler idled. Insertion parallelism lives behind Sink.AddFixedBatch: a
// sharded sink radix-partitions the keys on hashtable.ShardOf so each
// worker owns a shard range and atomic contention collapses; a single
// table parallelizes over key chunks, relying on the lock-free AddFixed.

// drainGrain is the per-chunk head count when building oriented key pairs.
const drainGrain = 2048

// drainBuf holds the oriented-pair scratch reused across waves by the drain
// goroutine.
type drainBuf struct {
	keys  []uint64
	fixed []uint64
}

// drainWave inserts one finished wave into the sink.
func (d *drainBuf) drainWave(table Sink, wave []headRec) {
	need := 2 * len(wave)
	if need == 0 {
		return
	}
	if cap(d.keys) < need {
		d.keys = make([]uint64, need)
		d.fixed = make([]uint64, need)
	}
	keys := d.keys[:need]
	fixed := d.fixed[:need]
	par.ForRange(len(wave), drainGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h := wave[i]
			keys[2*i] = hashtable.Key(h.e0, h.e1)
			keys[2*i+1] = hashtable.Key(h.e1, h.e0)
			fixed[2*i] = h.fixed
			fixed[2*i+1] = h.fixed
		}
	})
	table.AddFixedBatch(keys, fixed)
}
