package sampler

import (
	"math"
	"testing"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

// cycleGraph returns an n-cycle.
func cycleGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	arcs := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		arcs[i] = graph.Edge{U: uint32(i), V: uint32((i + 1) % n)}
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// completeGraph returns K_n.
func completeGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	var arcs []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32(j)})
		}
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPathSampleEndpointsValid(t *testing.T) {
	g := cycleGraph(t, 10)
	src := rng.New(1, 0)
	for r := 1; r <= 10; r++ {
		for trial := 0; trial < 200; trial++ {
			u, v := PathSample(g, 0, 1, r, src)
			if int(u) >= 10 || int(v) >= 10 {
				t.Fatalf("endpoint out of range: (%d,%d)", u, v)
			}
		}
	}
}

func TestPathSampleParityOnCycle(t *testing.T) {
	// On an even cycle (bipartite), an r-step path sample starting from arc
	// (u, u+1) must end at vertices whose index-parities differ by r-1 steps
	// total: parity(u')+parity(v') == parity(u)+parity(v)+r-1 (mod 2).
	g := cycleGraph(t, 12)
	src := rng.New(2, 0)
	for r := 1; r <= 6; r++ {
		for trial := 0; trial < 100; trial++ {
			u, v := PathSample(g, 3, 4, r, src)
			got := (int(u) + int(v)) % 2
			want := (3 + 4 + r - 1) % 2
			if got != want {
				t.Fatalf("r=%d: parity %d want %d (endpoints %d,%d)", r, got, want, u, v)
			}
		}
	}
}

func TestProb(t *testing.T) {
	if p := Prob(1, 2, 2); p != 1 {
		t.Fatalf("Prob capped: %g", p)
	}
	if p := Prob(1, 10, 10); math.Abs(p-0.2) > 1e-12 {
		t.Fatalf("Prob(1,10,10)=%g want 0.2", p)
	}
}

func TestSampleTrialCountConcentrates(t *testing.T) {
	g := completeGraph(t, 30)
	m := int64(50000)
	_, stats, err := Sample(g, Config{T: 5, M: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(stats.Trials-m)) > 0.05*float64(m) {
		t.Fatalf("trials %d far from target %d", stats.Trials, m)
	}
	if stats.Heads != stats.Trials {
		t.Fatalf("without downsampling heads %d != trials %d", stats.Heads, stats.Trials)
	}
}

func TestSampleDownsamplingReducesHeads(t *testing.T) {
	// K_40 has degree 39 everywhere; with C = log(40) ≈ 3.7,
	// p_e ≈ 3.7 * 2/39 ≈ 0.19, so heads should be a small fraction.
	g := completeGraph(t, 40)
	m := int64(100000)
	_, stats, err := Sample(g, Config{T: 5, M: m, Downsample: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(stats.Heads) / float64(stats.Trials)
	wantP := Prob(math.Log(40), 39, 39)
	if math.Abs(frac-wantP) > 0.05 {
		t.Fatalf("heads fraction %.3f want ≈ %.3f", frac, wantP)
	}
}

func TestSampleTableSymmetric(t *testing.T) {
	g := completeGraph(t, 12)
	tab, _, err := Sample(g, Config{T: 3, M: 20000, Downsample: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	us, vs, _ := tab.Drain()
	for i := range us {
		wa, _ := tab.Get(us[i], vs[i])
		wb, ok := tab.Get(vs[i], us[i])
		if !ok {
			t.Fatalf("missing mirror of (%d,%d)", us[i], vs[i])
		}
		if math.Abs(wa-wb) > 1e-6 {
			t.Fatalf("asymmetric weights (%d,%d): %g vs %g", us[i], vs[i], wa, wb)
		}
	}
}

func TestSampleTotalWeightUnbiased(t *testing.T) {
	// Each trial contributes expected weight 1 per orientation (heads add
	// 1/p_e with probability p_e), so total table weight ≈ 2·Trials.
	g := completeGraph(t, 25)
	tab, stats, err := Sample(g, Config{T: 4, M: 200000, Downsample: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, _, ws := tab.Drain()
	var total float64
	for _, w := range ws {
		total += w
	}
	want := 2 * float64(stats.Trials)
	if math.Abs(total-want) > 0.05*want {
		t.Fatalf("total weight %.0f want ≈ %.0f", total, want)
	}
}

func TestSampleT1IsEdgeDistribution(t *testing.T) {
	// With T = 1, r is always 1, s = 0: samples are the original arcs.
	g := cycleGraph(t, 8)
	tab, _, err := Sample(g, Config{T: 1, M: 10000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	us, vs, _ := tab.Drain()
	for i := range us {
		diff := (int(us[i]) - int(vs[i]) + 8) % 8
		if diff != 1 && diff != 7 {
			t.Fatalf("T=1 sample (%d,%d) not an original edge", us[i], vs[i])
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	g := completeGraph(t, 15)
	cfg := Config{T: 4, M: 30000, Downsample: true, Seed: 11}
	t1, s1, err := Sample(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, s2, err := Sample(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Trials != s2.Trials || s1.Heads != s2.Heads || s1.DistinctEntries != s2.DistinctEntries {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	us, vs, ws := t1.Drain()
	for i := range us {
		w2, ok := t2.Get(us[i], vs[i])
		if !ok || math.Abs(w2-ws[i]) > 1e-9 {
			t.Fatalf("entry (%d,%d) differs between identical runs", us[i], vs[i])
		}
	}
}

func TestSampleErrors(t *testing.T) {
	g := cycleGraph(t, 4)
	if _, _, err := Sample(g, Config{T: 0, M: 10}); err == nil {
		t.Fatal("expected T error")
	}
	if _, _, err := Sample(g, Config{T: 2, M: 0}); err == nil {
		t.Fatal("expected M error")
	}
	empty, err := graph.FromEdges(3, nil, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Sample(empty, Config{T: 2, M: 10}); err == nil {
		t.Fatal("expected empty-graph error")
	}
}

func TestDownsampledKeepsExpectedEdgeBudget(t *testing.T) {
	// The scheme keeps O(nC) edges in expectation: Σ_arcs p_e ≤ 2nC. Verify
	// heads stay within that budget for a dense graph where it bites.
	g := completeGraph(t, 60)
	m := g.NumEdges() // one trial per arc on average
	_, stats, err := Sample(g, Config{T: 1, M: m, Downsample: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	c := math.Log(60)
	bound := 2 * 60 * c * 1.3 // 30% slack for randomness
	if float64(stats.Heads) > bound {
		t.Fatalf("heads %d exceed O(nC) bound %.0f", stats.Heads, bound)
	}
}
