package sampler

import (
	"fmt"

	"lightne/internal/graph"
	"lightne/internal/par"
)

// Batched walking — the locality optimization the paper names as future
// work (§4.2): "batching multiple random walks accessing the same (or
// nearby vertices) together ... via a semisort, or a partial radix-sort".
//
// SampleBatched draws the same trial distribution as Sample but advances
// all in-flight walks in lock step: between steps the walk states are
// radix-grouped by their current vertex, so each step scans vertices in
// order and every walk positioned at a vertex consumes its adjacency while
// it is cache-hot — sequential reads instead of Sample's random reads.
//
// The pass runs as a three-stage pipeline (see DESIGN.md "Wave pipeline"):
//
//	enumerate ──► wave walking ──► sink insertion
//	(parallel      (parallel        (parallel, overlapped
//	 count/scan/    advance +        with the NEXT wave's
//	 fill)          compaction)      walking)
//
// Stage 1 (enumerate.go) generates every head up front with per-vertex RNG
// streams and count/scan/fill over vertex blocks, so the trial distribution
// and per-head weights are identical to a serial enumeration. Stage 2
// (wave.go) advances one wave of walks at a time, all states in lock step.
// Stage 3 (drain.go) inserts a finished wave's (e0, e1, fixed) heads into
// the Sink concurrently with the walker advancing the next wave — the
// double-buffered overlap that keeps the machine busy end to end. Walk
// steps are single keyed-hash draws (rng.Hash64 keyed by (global head,
// side, step) — see wave.go), which makes the output a pure function of
// (graph, config): bit-identical across waveSize, Shards and GOMAXPROCS
// once drained through DrainCSR.
//
// Walk states pack into one uint64 so the radix grouping is the only data
// movement:
//
//	cur(32) | steps(9) | side(1) | head(22)
//
// which caps walk length at 512 (T ≤ 512) and the wave size at 2^22 heads;
// larger budgets process in multiple waves.

const (
	batchHeadBits = 22
	batchSideBit  = batchHeadBits
	batchStepBits = 9
	batchStepOff  = batchHeadBits + 1
	batchCurOff   = batchStepOff + batchStepBits
	maxWaveHeads  = 1 << batchHeadBits
)

func packState(cur uint32, steps int, side int, head int) uint64 {
	return uint64(cur)<<batchCurOff |
		uint64(steps)<<batchStepOff |
		uint64(side)<<batchSideBit |
		uint64(head)
}

// stateTombstone marks a finished walk state awaiting compaction.
const stateTombstone = ^uint64(0)

// headRec is one enumerated walk head: the arc it was drawn from, the split
// walk lengths, and the importance weight it deposits. The endpoint fields
// double as storage — enumeration writes the arc (u, v), and the wave
// overwrites them with the walk's final endpoints before the drain reads
// them. 24 bytes per head.
type headRec struct {
	fixed  uint64 // importance weight 1/p_e, fixed point
	e0, e1 uint32 // arc (u, v) at enumeration; walk endpoints after the wave
	s0, s1 uint16 // remaining steps on each side: s and r-1-s
}

// SampleBatched runs the downsampled PathSampling pass with radix-batched
// walks and the wave pipeline. Weighted graphs walk natively: head
// enumeration uses the weighted per-arc budget (M·w_e/vol trials, ProbW
// over strengths) and each walk step resolves a per-vertex Vose alias
// table from the same single keyed-hash draw the unweighted path uses
// (see graph.AliasNeighbor). waveSize caps concurrently in-flight
// heads; <= 0 picks the maximum (2^22). The drained aggregate is
// bit-identical for every waveSize, shard count and worker count.
func SampleBatched(g *graph.Graph, cfg Config, waveSize int) (Sink, Stats, error) {
	if cfg.T <= 0 || cfg.T > 512 {
		return nil, Stats{}, fmt.Errorf("sampler: batched walking requires 1 <= T <= 512, got %d", cfg.T)
	}
	if cfg.M <= 0 {
		return nil, Stats{}, fmt.Errorf("sampler: M must be positive, got %d", cfg.M)
	}
	if g.NumEdges() == 0 {
		return nil, Stats{}, fmt.Errorf("sampler: graph has no edges")
	}
	if waveSize <= 0 || waveSize > maxWaveHeads {
		waveSize = maxWaveHeads
	}

	heads, stats := enumerateHeads(g, cfg)

	// Presize from the realized head count — known exactly after stage 1,
	// unlike Sample which must presize from an expectation.
	hint := cfg.TableSizeHint
	if hint <= 0 {
		hint = 2*len(heads) + 1024
	}
	table := NewSink(hint, cfg.Shards)

	pipelineWaves(g, table, heads, cfg.Seed, waveSize)

	stats.DistinctEntries = table.Len()
	stats.TableBytes = table.MemoryBytes()
	stats.PeakTableBytes = table.PeakMemoryBytes()
	return table, stats, nil
}

// pipelineWaves drives stages 2 and 3: the walker (this goroutine) advances
// one wave of walks at a time, handing each finished wave to a drain
// goroutine that inserts its heads into the sink while the walker is already
// advancing the next wave. Wave slices are disjoint regions of the heads
// array and the channel send orders the walker's endpoint writes before the
// drain's reads, so the overlap is race-free. The channel holds at most one
// finished wave: the walker only stalls if walking runs two waves ahead of
// insertion.
func pipelineWaves(g *graph.Graph, table Sink, heads []headRec, seed uint64, waveSize int) {
	if len(heads) == 0 {
		return
	}
	maxWave := waveSize
	if len(heads) < maxWave {
		maxWave = len(heads)
	}
	states := make([]uint64, 2*maxWave)
	scratch := make([]uint64, 2*maxWave)
	// One neighbor cursor per worker: the wave-local decode buffers for
	// compressed graphs (a no-op slice view otherwise), reused across every
	// round of every wave so steady state allocates nothing.
	cursors := make([]graph.NeighborCursor, par.Workers())
	for i := range cursors {
		cursors[i] = g.NewNeighborCursor()
	}

	waveCh := make(chan []headRec, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf drainBuf
		for wave := range waveCh {
			buf.drainWave(table, wave)
		}
	}()
	for lo := 0; lo < len(heads); lo += waveSize {
		hi := lo + waveSize
		if hi > len(heads) {
			hi = len(heads)
		}
		wave := heads[lo:hi]
		runWave(g, wave, states, scratch, cursors, seed, uint64(lo))
		waveCh <- wave
	}
	close(waveCh)
	<-done
}
