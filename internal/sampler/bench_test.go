package sampler

import (
	"testing"

	"lightne/internal/graph"
)

// Benchmark fixture: a skewed random graph and a trial budget large enough
// that sampling dominates setup. All variants sample the same distribution,
// so ns/op is directly comparable across them (benchstat-friendly with
// -count).
func benchGraphAndConfig(b *testing.B, shards int) (*graph.Graph, Config) {
	g := chordGraph(b, 4000, 6, 1)
	cfg := Config{T: 10, M: 1_500_000, Downsample: true, Seed: 1, Shards: shards}
	return g, cfg
}

// BenchmarkSample is the per-arc reference sampler (walks interleaved with
// inserts, no batching).
func BenchmarkSample(b *testing.B) {
	g, cfg := benchGraphAndConfig(b, 1)
	b.ResetTimer()
	var stats Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = Sample(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSamplerMetrics(b, stats)
}

// BenchmarkSampleSerialFlush is the pre-pipeline batched sampler kept as the
// baseline: serial head enumeration, serial per-wave flush through AddFixed,
// serial compaction.
func BenchmarkSampleSerialFlush(b *testing.B) {
	g, cfg := benchGraphAndConfig(b, 1)
	b.ResetTimer()
	var stats Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = SampleBatchedSerial(g, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSamplerMetrics(b, stats)
}

// BenchmarkSampleBatched is the wave pipeline on a single shared table:
// parallel enumeration, walking overlapped with draining, parallel-chunk
// inserts.
func BenchmarkSampleBatched(b *testing.B) {
	g, cfg := benchGraphAndConfig(b, 1)
	b.ResetTimer()
	var stats Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = SampleBatched(g, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSamplerMetrics(b, stats)
}

// BenchmarkSamplePipelined is the full configuration the tentpole targets:
// the wave pipeline draining into a sharded sink via radix-partitioned,
// contention-free batch inserts.
func BenchmarkSamplePipelined(b *testing.B) {
	g, cfg := benchGraphAndConfig(b, 4)
	b.ResetTimer()
	var stats Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = SampleBatched(g, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSamplerMetrics(b, stats)
}

// BenchmarkSampleBatchedCompressed is the sharded wave pipeline walking the
// parallel-byte compressed adjacency natively: per-worker cursors decode each
// block a radix-grouped run touches once, and no uncompressed edge array
// exists at any point. Compare against BenchmarkSamplePipelined for the cost
// of walking compressed; the graph-B metric shows the storage saved.
func BenchmarkSampleBatchedCompressed(b *testing.B) {
	g, cfg := benchGraphAndConfig(b, 4)
	cg, err := g.ToCompressed(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cg.SizeBytes()), "graph-B")
	b.ResetTimer()
	var stats Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = SampleBatched(cg, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSamplerMetrics(b, stats)
}

// BenchmarkSampleBatchedWeighted is the sharded wave pipeline on the
// weighted twin of the benchmark fixture: every walk step resolves a Vose
// alias table from its keyed draw instead of a bare multiply-shift, and
// enumeration spreads the budget as M·w_e/vol per arc. Compare against
// BenchmarkSamplePipelined for the cost of weighted draws.
func BenchmarkSampleBatchedWeighted(b *testing.B) {
	g := weightedChordGraph(b, 4000, 6, 1)
	cfg := Config{T: 10, M: 1_500_000, Downsample: true, Seed: 1, Shards: 4}
	b.ResetTimer()
	var stats Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = SampleBatched(g, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSamplerMetrics(b, stats)
}

// reportSamplerMetrics derives per-run throughput from the last run's stats
// (every run samples the same distribution, so Heads is the same draw count).
func reportSamplerMetrics(b *testing.B, stats Stats) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(stats.Heads)*float64(b.N)/sec, "heads/s")
	}
	b.ReportMetric(float64(stats.PeakTableBytes), "peak-table-B")
}
