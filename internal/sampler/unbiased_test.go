package sampler

import (
	"math"
	"testing"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

// TestDownsamplingLaplacianUnbiased verifies Theorem 3.1 empirically: the
// reweighted downsampled edge set is an unbiased estimator of the graph
// Laplacian. We check it entry-wise on the degree (diagonal) via the total
// per-edge weight: for every edge e, E[kept·(1/p_e)] = 1, so averaging over
// many independent trials the estimated weight of each edge converges to 1.
func TestDownsamplingLaplacianUnbiased(t *testing.T) {
	// An irregular graph so the p_e values differ across edges.
	var arcs []graph.Edge
	n := 40
	// A hub connected to everything plus a sparse ring.
	for i := 1; i < n; i++ {
		arcs = append(arcs, graph.Edge{U: 0, V: uint32(i)})
	}
	for i := 1; i < n-1; i++ {
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32(i + 1)})
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := 1.0 // small constant so that p_e < 1 for hub edges
	const rounds = 4000
	src := rng.New(99, 0)
	// estimate[e] accumulates kept/p_e per round for a few probe edges.
	probes := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 20}, {U: 5, V: 6}}
	sums := make([]float64, len(probes))
	for r := 0; r < rounds; r++ {
		for i, e := range probes {
			pe := Prob(c, g.Degree(e.U), g.Degree(e.V))
			if pe >= 1 {
				sums[i]++
				continue
			}
			if src.Bernoulli(pe) {
				sums[i] += 1 / pe
			}
		}
	}
	for i, e := range probes {
		mean := sums[i] / rounds
		if math.Abs(mean-1) > 0.1 {
			t.Fatalf("edge (%d,%d): E[kept/p] = %.3f, want 1 (Theorem 3.1)", e.U, e.V, mean)
		}
	}
}

// TestDownsamplingLaplacianUnbiasedWeighted extends the Theorem 3.1 check
// to weighted graphs: with p_e = ProbW(c, w_e, s_u, s_v) over weighted
// degrees, the reweighted kept indicator still satisfies E[kept·(1/p_e)] = 1
// per arc — the property that makes the weighted sparsifier an unbiased
// Laplacian estimator.
func TestDownsamplingLaplacianUnbiasedWeighted(t *testing.T) {
	// A weighted hub-plus-ring: hub arcs carry skewed weights so strengths
	// (weighted degrees) differ sharply from counts, and p_e spans a wide
	// range below 1.
	var arcs []graph.WeightedEdge
	n := 40
	for i := 1; i < n; i++ {
		arcs = append(arcs, graph.WeightedEdge{U: 0, V: uint32(i), W: float64(1+i%5) * 0.5})
	}
	for i := 1; i < n-1; i++ {
		arcs = append(arcs, graph.WeightedEdge{U: uint32(i), V: uint32(i + 1), W: 2})
	}
	g, err := graph.FromWeightedEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	strengths := g.Strengths()
	c := 0.5 // small constant so that p_e < 1 on the probes
	const rounds = 4000
	src := rng.New(99, 0)
	type probe struct {
		u  uint32
		i  int // edge index within u's adjacency
	}
	probes := []probe{{0, 0}, {0, 19}, {5, 1}}
	sums := make([]float64, len(probes))
	for r := 0; r < rounds; r++ {
		for i, p := range probes {
			v := g.Neighbor(p.u, p.i)
			pe := ProbW(c, g.EdgeWeight(p.u, p.i), strengths[p.u], strengths[v])
			if pe >= 1 {
				sums[i]++
				continue
			}
			if src.Bernoulli(pe) {
				sums[i] += 1 / pe
			}
		}
	}
	for i, p := range probes {
		mean := sums[i] / rounds
		if math.Abs(mean-1) > 0.1 {
			t.Fatalf("arc (%d, #%d): E[kept/p] = %.3f, want 1 (Theorem 3.1, weighted)", p.u, p.i, mean)
		}
	}
}

// TestDownsamplingProbabilityBounds verifies the Theorem 3.2 sandwich: the
// degree quantity (1/du + 1/dv) used for p_e is a genuine upper bound of
// effective resistance on a graph where resistance is computable by hand:
// on an n-cycle, R(u,v) for adjacent vertices is (n-1)/n < 1 = 1/2+1/2.
func TestDownsamplingProbabilityBounds(t *testing.T) {
	n := 10
	resistanceAdjacent := float64(n-1) / float64(n) // series/parallel by hand
	degreeBound := 1.0/2 + 1.0/2                    // du = dv = 2 on a cycle
	if resistanceAdjacent > degreeBound {
		t.Fatalf("R=%g exceeds degree bound %g", resistanceAdjacent, degreeBound)
	}
	lower := 0.5 * degreeBound
	if resistanceAdjacent < lower {
		t.Fatalf("R=%g below lower sandwich %g", resistanceAdjacent, lower)
	}
}

// TestSampleExpectedWeightPerEdgeMatchesNoDownsample: accumulate tables with
// and without downsampling on the same graph and budget; total weights must
// agree within sampling noise (the unbiasedness that makes the sparsifier a
// drop-in replacement).
func TestSampleExpectedWeightPerEdgeMatchesNoDownsample(t *testing.T) {
	g := completeGraph(t, 30)
	m := int64(400000)
	sum := func(down bool) float64 {
		tab, _, err := Sample(g, Config{T: 3, M: m, Downsample: down, C: 1.5, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		_, _, ws := tab.Drain()
		var s float64
		for _, w := range ws {
			s += w
		}
		return s
	}
	with := sum(true)
	without := sum(false)
	if math.Abs(with-without) > 0.05*without {
		t.Fatalf("downsampled mass %.0f vs plain %.0f differ beyond noise", with, without)
	}
}
