package sampler

// Streaming hand-off from the aggregation sink to a chunk consumer. The
// single-pass sketched factorization wants to absorb the sparsifier while it
// drains out of the hash table instead of holding a second, scaled copy of
// the CSR. The global radix sort inside DrainCSR must finish before any row's
// final content exists, so "streaming" here means: after grouping, the rows
// are handed out in bounded whole-row chunks that the consumer can transform
// (scale + trunc-log) and absorb one at a time, never materializing the
// scaled matrix.

// ChunkRows splits the rows of a CSR row-pointer array into whole-row chunks
// of at most maxEntries entries and returns the row boundaries: chunk c is
// rows [bounds[c], bounds[c+1]). A single row larger than maxEntries forms
// its own chunk (rows are never split — whole-row chunks are what make
// downstream sketch absorption order-independent). The result is a pure
// function of (rowPtr, maxEntries): no worker count, shard count or wave
// size enters, so chunk boundaries are deterministic whenever the drained
// CSR is.
func ChunkRows(rowPtr []int64, maxEntries int64) []int {
	numRows := len(rowPtr) - 1
	if maxEntries < 1 {
		maxEntries = 1
	}
	bounds := make([]int, 1, 8)
	lo := 0
	for lo < numRows {
		hi := lo + 1
		for hi < numRows && rowPtr[hi+1]-rowPtr[lo] <= maxEntries {
			hi++
		}
		bounds = append(bounds, hi)
		lo = hi
	}
	return bounds
}

// StreamCSR drains the sink in fully-sorted CSR order and hands the rows to
// emit in whole-row chunks of at most maxEntries entries (ChunkRows
// boundaries). emit receives the half-open row range plus the full drained
// arrays — chunk c's entries are cols[rowPtr[rowLo]:rowPtr[rowHi]] — and is
// called sequentially in row order, so the consumer may overlap its own work
// (transform, sketch absorption) against the next call but never sees two
// chunks at once. Returns the total number of drained entries.
//
// The drained arrays stay live for the duration of the call; the caller's
// peak is one raw CSR (12 bytes per entry plus the row pointers), not the
// raw and the transformed copy together.
func StreamCSR(sink Sink, numRows int, maxEntries int64, emit func(rowLo, rowHi int, rowPtr []int64, cols []uint32, ws []float64)) int64 {
	rowPtr, cols, ws := sink.DrainCSR(numRows)
	bounds := ChunkRows(rowPtr, maxEntries)
	for c := 0; c+1 < len(bounds); c++ {
		emit(bounds[c], bounds[c+1], rowPtr, cols, ws)
	}
	return rowPtr[numRows]
}
