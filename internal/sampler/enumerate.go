package sampler

import (
	"lightne/internal/graph"
	"lightne/internal/hashtable"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// Stage 1 of the wave pipeline: parallel head enumeration.
//
// The serial enumeration this replaces walked vertices in order, drawing
// each vertex's trial coins from a stream seeded (cfg.Seed, u). Those
// streams make the draw sequence of a vertex independent of every other
// vertex, so the enumeration parallelizes with the standard two-pass shape:
// a counting pass runs each vertex block's draws to find per-block head
// counts, par.ExclusiveScan assigns each block a stable output offset, and
// a fill pass re-runs the identical draws writing head records at their
// final indices. Head i of the output is exactly head i of the serial loop
// — same arc, same split, same weight — for every block geometry and worker
// count, which is what keeps the pipelined sampler's trial distribution
// identical to Sample's and its output deterministic.

// enumGrain is the minimum vertex count per enumeration block (matches the
// per-vertex grain Sample uses; degree skew is absorbed by ForBlocks
// handing out ~4 blocks per worker).
const enumGrain = 32

// enumerateHeads generates every walk head of the pass: for each arc
// (u, v), n_e = ⌊M·w_e/vol⌋ + Bernoulli({M·w_e/vol}) trials — the weighted
// per-arc budget the serial Sample path draws (w_e = 1 and vol = m for
// unweighted graphs, so the unweighted stream is unchanged bit for bit) —
// each surviving the downsampling coin with probability p_e =
// min(1, C·w_e·(1/s_u + 1/s_v)) over weighted degrees and drawing a walk
// length r and split s. Returns the heads in serial-enumeration order plus
// the trial accounting part of Stats.
func enumerateHeads(g *graph.Graph, cfg Config) ([]headRec, Stats) {
	n := g.NumVertices()
	c := downsampleConstant(g, cfg)
	perUnit := float64(cfg.M) / g.TotalWeight()
	var strengths []float64
	if cfg.Downsample {
		strengths = g.Strengths()
	}

	// forVertex runs one vertex's full draw sequence, calling emit for every
	// head. Both passes route through it so their streams cannot drift.
	forVertex := func(src *rng.Source, u uint32, trials *int64, emit func(v uint32, r, s int, fixed uint64)) {
		du := g.Degree(u)
		if du == 0 {
			return
		}
		src.Seed(cfg.Seed, uint64(u))
		for i := 0; i < du; i++ {
			v := g.Neighbor(u, i)
			ew := g.EdgeWeight(u, i)
			perArc := perUnit * ew
			ne := int64(perArc)
			if frac := perArc - float64(ne); frac > 0 && src.Bernoulli(frac) {
				ne++
			}
			if ne == 0 {
				continue
			}
			pe := 1.0
			if cfg.Downsample {
				pe = ProbW(c, ew, strengths[u], strengths[v])
			}
			fixed := hashtable.ToFixed(1 / pe)
			for k := int64(0); k < ne; k++ {
				*trials++
				if pe < 1 && !src.Bernoulli(pe) {
					continue
				}
				r := 1 + src.Intn(cfg.T)
				s := src.Intn(r)
				emit(v, r, s, fixed)
			}
		}
	}

	bounds := par.Blocks(n, enumGrain)
	nb := len(bounds) - 1
	counts := make([]int64, nb)
	trials := make([]int64, nb)

	// Pass 1: count heads per block (the r and s draws keep the stream
	// aligned with the fill pass; their values are discarded).
	par.ForBlocks(bounds, func(b, lo, hi int) {
		var src rng.Source
		var nHeads int64
		for ui := lo; ui < hi; ui++ {
			forVertex(&src, uint32(ui), &trials[b], func(uint32, int, int, uint64) {
				nHeads++
			})
		}
		counts[b] = nHeads
	})

	var stats Stats
	for _, t := range trials {
		stats.Trials += t
	}
	total := par.ExclusiveScan(counts)
	stats.Heads = total
	heads := make([]headRec, total)

	// Pass 2: re-run the identical draws, writing records at the stable
	// indices the scan assigned.
	par.ForBlocks(bounds, func(b, lo, hi int) {
		var src rng.Source
		var discard int64
		w := counts[b]
		for ui := lo; ui < hi; ui++ {
			u := uint32(ui)
			forVertex(&src, u, &discard, func(v uint32, r, s int, fixed uint64) {
				heads[w] = headRec{fixed: fixed, e0: u, e1: v, s0: uint16(s), s1: uint16(r - 1 - s)}
				w++
			})
		}
	})
	return heads, stats
}
