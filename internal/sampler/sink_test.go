package sampler

import (
	"testing"

	"lightne/internal/aggregate"
	"lightne/internal/graph"
	"lightne/internal/hashtable"
)

// TestSinkShardedStress drives the full sampler → sharded table → grouped
// drain path with a deliberately tiny capacity hint so every shard grows
// (several times) under concurrent inserts. Run under `go test -race` (wired
// into `make race`) this covers the CAS insert, xadd accumulate, grow lock,
// parallel two-pass drain, and radix grouping together. The drained CSR must
// be bit-identical to the single-table run with the same seed.
func TestSinkShardedStress(t *testing.T) {
	g := completeGraph(t, 48)
	cfg := Config{T: 4, M: 300_000, Downsample: true, Seed: 17, TableSizeHint: 16}

	cfg.Shards = 1
	ref, refStats, err := Sample(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ref.(*hashtable.Table); !ok {
		t.Fatalf("shards=1 sink is %T, want *hashtable.Table", ref)
	}
	refRowPtr, refCols, refWs := ref.DrainCSR(g.NumVertices())

	cfg.Shards = 8
	sink, stats, err := Sample(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := sink.(*aggregate.SharedTable)
	if !ok {
		t.Fatalf("shards=8 sink is %T, want *aggregate.SharedTable", sink)
	}
	if st.Shards() != 8 {
		t.Fatalf("got %d shards, want 8", st.Shards())
	}
	if stats.Trials != refStats.Trials || stats.Heads != refStats.Heads {
		t.Fatalf("stats differ: %+v vs %+v", stats, refStats)
	}
	if sink.Len() != ref.Len() {
		t.Fatalf("distinct entries %d, want %d", sink.Len(), ref.Len())
	}

	rowPtr, cols, ws := sink.DrainCSR(g.NumVertices())
	if len(cols) != len(refCols) {
		t.Fatalf("nnz %d, want %d", len(cols), len(refCols))
	}
	for i := range refRowPtr {
		if rowPtr[i] != refRowPtr[i] {
			t.Fatalf("rowPtr[%d]=%d want %d", i, rowPtr[i], refRowPtr[i])
		}
	}
	for i := range refCols {
		if cols[i] != refCols[i] || ws[i] != refWs[i] {
			t.Fatalf("entry %d: (%d,%v) want (%d,%v)", i, cols[i], ws[i], refCols[i], refWs[i])
		}
	}

	// Weight mass conservation: total drained weight equals Σ heads·(1/p_e)
	// accumulated in both orientations; cheaper to check the two drains agree
	// and are symmetric.
	var total, refTotal float64
	for i := range ws {
		total += ws[i]
		refTotal += refWs[i]
	}
	if total != refTotal {
		t.Fatalf("total weight %v, want %v", total, refTotal)
	}
}

// TestSinkIncrementalSharded exercises SampleArcsInto against a sharded sink
// (the dynamic embedder's configuration): concurrent accumulation into an
// undersized sharded table, then a partial drain whose per-row multisets
// must match the fully-sorted drain.
func TestSinkIncrementalSharded(t *testing.T) {
	g := completeGraph(t, 32)
	arcs := make([]graph.Edge, 0, 32*31/2)
	for u := 0; u < 32; u++ {
		for v := u + 1; v < 32; v++ {
			arcs = append(arcs, graph.Edge{U: uint32(u), V: uint32(v)})
		}
	}
	sink := NewSink(16, 4)
	stats, err := SampleArcsInto(g, sink, arcs, 50, 3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trials == 0 || sink.Len() == 0 {
		t.Fatalf("degenerate run: %+v, len %d", stats, sink.Len())
	}
	n := g.NumVertices()
	rowPtr, cols, ws := sink.DrainCSR(n)
	pRowPtr, pCols, pWs := sink.DrainCSRPartial(n)
	for i := range rowPtr {
		if rowPtr[i] != pRowPtr[i] {
			t.Fatalf("partial rowPtr[%d]=%d want %d", i, pRowPtr[i], rowPtr[i])
		}
	}
	// Per-row multisets must agree; the sorted drain is the canonical order.
	for r := 0; r < n; r++ {
		lo, hi := rowPtr[r], rowPtr[r+1]
		seen := make(map[uint64]int)
		for i := lo; i < hi; i++ {
			seen[uint64(pCols[i])]++
		}
		for i := lo; i < hi; i++ {
			seen[uint64(cols[i])]--
		}
		for k, c := range seen {
			if c != 0 {
				t.Fatalf("row %d: column %d multiset mismatch (%d)", r, k, c)
			}
		}
		// Weights travel with their columns.
		sorted := make(map[uint64]float64)
		for i := lo; i < hi; i++ {
			sorted[uint64(cols[i])] = ws[i]
		}
		for i := lo; i < hi; i++ {
			if sorted[uint64(pCols[i])] != pWs[i] {
				t.Fatalf("row %d col %d: weight %v want %v", r, pCols[i], pWs[i], sorted[uint64(pCols[i])])
			}
		}
	}
}

// TestStatsPeakTableBytes: an undersized table hint forces growth during the
// pass and the stats must expose the transient high-water mark (old + new
// slot arrays = 1.5x the final footprint); a correctly presized pass never
// grows, so peak and final agree.
func TestStatsPeakTableBytes(t *testing.T) {
	g := completeGraph(t, 40)
	cfg := Config{T: 5, M: 20000, Seed: 9}

	cfg.TableSizeHint = 1 // guaranteed undersized: forces repeated doubling
	for _, shards := range []int{1, 4} {
		cfg.Shards = shards
		_, stats, err := Sample(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.PeakTableBytes != stats.TableBytes*3/2 {
			t.Fatalf("shards=%d: peak %d, want 1.5x final %d after growth",
				shards, stats.PeakTableBytes, stats.TableBytes)
		}
	}

	cfg.Shards = 1
	cfg.TableSizeHint = 0 // derived estimate presizes generously
	_, stats, err := Sample(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakTableBytes != stats.TableBytes {
		t.Fatalf("presized pass grew: peak %d != final %d", stats.PeakTableBytes, stats.TableBytes)
	}
}
