package sampler

import (
	"fmt"

	"lightne/internal/graph"
	"lightne/internal/hashtable"
	"lightne/internal/par"
	"lightne/internal/radix"
	"lightne/internal/rng"
)

// SampleBatchedSerial is the pre-pipeline batched sampler, kept as the
// differential oracle and benchmark baseline for SampleBatched: wave
// *advances* are parallel (the original radix-batching win), but head
// enumeration is a single-threaded vertex loop, every wave flushes into the
// sink through a sequential AddFixed loop before the next wave may start,
// and tombstone compaction is a serial sweep. It lives in a _test.go file so
// the shipped package carries exactly one batched sampler; tests and
// in-package benchmarks still exercise it as the reference implementation.
//
// It draws the identical trial distribution and per-head weights as
// SampleBatched (the per-vertex enumeration streams are the same), so Trials
// and Heads match exactly; walk steps use chunk-seeded RNG streams, so the
// aggregates agree distributionally but not bitwise.
func SampleBatchedSerial(g *graph.Graph, cfg Config, waveSize int) (Sink, Stats, error) {
	if cfg.T <= 0 || cfg.T > 512 {
		return nil, Stats{}, fmt.Errorf("sampler: batched walking requires 1 <= T <= 512, got %d", cfg.T)
	}
	if cfg.M <= 0 {
		return nil, Stats{}, fmt.Errorf("sampler: M must be positive, got %d", cfg.M)
	}
	if g.NumEdges() == 0 {
		return nil, Stats{}, fmt.Errorf("sampler: graph has no edges")
	}
	if g.Weighted() {
		return nil, Stats{}, fmt.Errorf("sampler: batched walking requires an unweighted graph")
	}
	if waveSize <= 0 || waveSize > maxWaveHeads {
		waveSize = maxWaveHeads
	}
	c := downsampleConstant(g, cfg)

	hint := cfg.TableSizeHint
	if hint <= 0 {
		hint = int(2*cfg.M) + 1024
	}
	table := NewSink(hint, cfg.Shards)

	// Enumerate heads arc by arc (same trial distribution as Sample),
	// flushing a wave whenever it fills.
	perArc := float64(cfg.M) / float64(g.NumEdges())
	base := int64(perArc)
	frac := perArc - float64(base)

	heads := make([]serialWaveHead, 0, waveSize)
	states := make([]uint64, 0, 2*waveSize)
	var stats Stats
	wave := 0

	flush := func() {
		if len(heads) == 0 {
			return
		}
		runWaveSerial(g, heads, states, cfg.Seed, uint64(wave))
		for _, h := range heads {
			table.AddFixed(hashtable.Key(h.e0, h.e1), h.fixed)
			table.AddFixed(hashtable.Key(h.e1, h.e0), h.fixed)
		}
		wave++
		heads = heads[:0]
		states = states[:0]
	}

	n := g.NumVertices()
	var src rng.Source
	for ui := 0; ui < n; ui++ {
		u := uint32(ui)
		du := g.Degree(u)
		if du == 0 {
			continue
		}
		src.Seed(cfg.Seed, uint64(u))
		for i := 0; i < du; i++ {
			v := g.Neighbor(u, i)
			ne := base
			if frac > 0 && src.Bernoulli(frac) {
				ne++
			}
			if ne == 0 {
				continue
			}
			pe := 1.0
			if cfg.Downsample {
				pe = Prob(c, du, g.Degree(v))
			}
			fixed := hashtable.ToFixed(1 / pe)
			for k := int64(0); k < ne; k++ {
				stats.Trials++
				if pe < 1 && !src.Bernoulli(pe) {
					continue
				}
				stats.Heads++
				r := 1 + src.Intn(cfg.T)
				s := src.Intn(r)
				head := len(heads)
				heads = append(heads, serialWaveHead{fixed: fixed})
				states = append(states,
					packState(u, s, 0, head),
					packState(v, r-1-s, 1, head))
				if len(heads) == waveSize {
					flush()
				}
			}
		}
	}
	flush()

	stats.DistinctEntries = table.Len()
	stats.TableBytes = table.MemoryBytes()
	stats.PeakTableBytes = table.PeakMemoryBytes()
	return table, stats, nil
}

// serialWaveHead is the per-head metadata of the serial-flush reference.
type serialWaveHead struct {
	fixed uint64 // importance weight, fixed point
	e0    uint32 // endpoints (filled as walks finish)
	e1    uint32
}

// runWaveSerial advances all states to completion, radix-grouping by current
// vertex between steps, and records endpoints into heads. Walk-step RNG
// streams are seeded per chunk, so output depends on the chunk geometry
// (hence on GOMAXPROCS) — the determinism gap the pipelined runWave closes.
func runWaveSerial(g *graph.Graph, heads []serialWaveHead, states []uint64, seed, wave uint64) {
	round := 0
	for len(states) > 0 {
		radix.Sort(states) // group by current vertex (top bits)
		// Advance every state one step in parallel; finished states record
		// their endpoint and are dropped by the compaction below.
		par.ForRange(len(states), 1024, func(lo, hi int) {
			var src rng.Source
			src.Seed(seed^walkSeedTag, (wave<<20)^uint64(round)<<40^uint64(lo))
			for i := lo; i < hi; i++ {
				st := states[i]
				cur := uint32(st >> batchCurOff)
				steps := int(st>>batchStepOff) & (1<<batchStepBits - 1)
				head := int(st & (maxWaveHeads - 1))
				side := int(st>>batchSideBit) & 1
				if steps == 0 {
					if side == 0 {
						heads[head].e0 = cur
					} else {
						heads[head].e1 = cur
					}
					states[i] = stateTombstone
					continue
				}
				next, ok := g.RandomNeighbor(cur, &src)
				if !ok {
					next = cur // isolated: stay (cannot happen on symmetric graphs)
				}
				states[i] = packState(next, steps-1, side, head)
			}
		})
		// Compact out tombstones.
		out := 0
		for _, st := range states {
			if st != stateTombstone {
				states[out] = st
				out++
			}
		}
		states = states[:out]
		round++
	}
}
