package svd

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/sparse"
)

// sketchCSR runs the full single-pass pipeline over an in-memory CSR.
func sketchCSR(t *testing.T, a *sparse.CSR, d int, opt SketchOptions, chunk int64) *Result {
	t.Helper()
	sk, err := NewSketch(a.NumRows, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	sk.AbsorbCSR(a.RowPtr, a.ColIdx, a.Val, chunk)
	res, err := sk.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// relSpectralErr compares recovered singular values against the exact dense
// SVD's top values: max_j |σ̂_j - σ_j| / σ_1.
func relSpectralErr(got []float64, ad *dense.Matrix) float64 {
	_, exact, _ := dense.SVD(ad)
	var worst float64
	for j := range got {
		if v := math.Abs(got[j]-exact[j]) / exact[0]; v > worst {
			worst = v
		}
	}
	return worst
}

// TestSketchQualityVsExact is the quality regression test: on an exact
// low-rank symmetric fixture both sketch kinds must recover the spectrum to
// high relative accuracy (the range finder captures the whole column space).
func TestSketchQualityVsExact(t *testing.T) {
	n, r := 80, 5
	a, ad := lowRankSparse(n, r, 7)
	for _, kind := range []SketchKind{SketchSparseSign, SketchGaussian} {
		res := sketchCSR(t, a, r, SketchOptions{Seed: 3, Kind: kind, Oversample: 12}, 97)
		if err := relSpectralErr(res.Sigma, ad); err > 1e-8 {
			t.Errorf("%v: relative spectral error %g on an exact rank-%d matrix", kind, err, r)
		}
		// Reconstruction U·Σ·Vᵀ ≈ A.
		us := res.U.Clone()
		for j, s := range res.Sigma {
			for i := 0; i < n; i++ {
				us.Set(i, j, us.At(i, j)*s)
			}
		}
		recon := dense.NewMatrix(n, n)
		dense.MatMul(recon, us, res.V.Transpose())
		var num, den float64
		for i := range recon.Data {
			dd := recon.Data[i] - ad.Data[i]
			num += dd * dd
			den += ad.Data[i] * ad.Data[i]
		}
		if rel := math.Sqrt(num / den); rel > 1e-6 {
			t.Errorf("%v: relative reconstruction error %g", kind, rel)
		}
	}
}

// TestSketchQualityFullRankSpectrum checks the realistic regime — a noisy
// matrix with a decaying spectrum, no exact low rank — where the single-pass
// estimate is approximate: the leading singular values must still come out
// within a few percent for both kinds.
func TestSketchQualityFullRankSpectrum(t *testing.T) {
	n := 120
	a, ad := lowRankSparse(n, 40, 21)
	d := 16
	for _, kind := range []SketchKind{SketchSparseSign, SketchGaussian} {
		res := sketchCSR(t, a, d, SketchOptions{Seed: 5, Kind: kind, Oversample: 40}, 311)
		if err := relSpectralErr(res.Sigma[:8], ad); err > 0.05 {
			t.Errorf("%v: leading singular values off by %g relative", kind, err)
		}
	}
}

func TestSketchChunkingInvariance(t *testing.T) {
	a, _ := lowRankSparse(70, 4, 13)
	opt := SketchOptions{Seed: 9}
	var ref *Result
	for _, chunk := range []int64{1, 7, 64, 1 << 20} {
		res := sketchCSR(t, a, 4, opt, chunk)
		if ref == nil {
			ref = res
			continue
		}
		for i := range res.U.Data {
			if res.U.Data[i] != ref.U.Data[i] {
				t.Fatalf("chunk=%d: U differs from reference at %d", chunk, i)
			}
		}
		for i := range res.Sigma {
			if res.Sigma[i] != ref.Sigma[i] {
				t.Fatalf("chunk=%d: sigma differs", chunk)
			}
		}
	}
}

// TestSketchBitIdenticalAcrossProcs pins the determinism contract of the
// sketch alone: same seed, any GOMAXPROCS and any chunking → bitwise equal
// factors. (The end-to-end GOMAXPROCS × Shards property lives in netsmf.)
func TestSketchBitIdenticalAcrossProcs(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	a, _ := lowRankSparse(90, 6, 17)
	for _, kind := range []SketchKind{SketchSparseSign, SketchGaussian} {
		var ref *Result
		for _, procs := range []int{1, 4} {
			for _, chunk := range []int64{33, 1 << 20} {
				runtime.GOMAXPROCS(procs)
				res := sketchCSR(t, a, 6, SketchOptions{Seed: 11, Kind: kind}, chunk)
				if ref == nil {
					ref = res
					continue
				}
				for i := range res.U.Data {
					if res.U.Data[i] != ref.U.Data[i] {
						t.Fatalf("%v procs=%d chunk=%d: U not bit-identical", kind, procs, chunk)
					}
				}
				for i := range res.V.Data {
					if res.V.Data[i] != ref.V.Data[i] {
						t.Fatalf("%v procs=%d chunk=%d: V not bit-identical", kind, procs, chunk)
					}
				}
				for i := range res.Sigma {
					if res.Sigma[i] != ref.Sigma[i] {
						t.Fatalf("%v procs=%d chunk=%d: sigma not bit-identical", kind, procs, chunk)
					}
				}
			}
		}
	}
}

// TestSketchConcurrentAbsorb exercises the concurrency contract under the
// race detector (make race includes this package): disjoint chunks absorbed
// from competing goroutines must land bit-identically to sequential
// absorption.
func TestSketchConcurrentAbsorb(t *testing.T) {
	a, _ := lowRankSparse(100, 5, 23)
	opt := SketchOptions{Seed: 13}
	want := sketchCSR(t, a, 5, opt, 1<<20)

	sk, err := NewSketch(a.NumRows, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Split rows into per-goroutine chunks.
	const parts = 8
	var wg sync.WaitGroup
	per := (a.NumRows + parts - 1) / parts
	for p := 0; p < parts; p++ {
		lo := p * per
		hi := lo + per
		if hi > a.NumRows {
			hi = a.NumRows
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := make([]int64, hi-lo+1)
			base := a.RowPtr[lo]
			for i := range local {
				local[i] = a.RowPtr[lo+i] - base
			}
			sk.Absorb(RowChunk{
				RowLo:  lo,
				RowPtr: local,
				Cols:   a.ColIdx[base:a.RowPtr[hi]],
				Vals:   a.Val[base:a.RowPtr[hi]],
			})
		}(lo, hi)
	}
	wg.Wait()
	if sk.AbsorbedNNZ() != a.NNZ() {
		t.Fatalf("absorbed %d entries, matrix has %d", sk.AbsorbedNNZ(), a.NNZ())
	}
	got, err := sk.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.U.Data {
		if got.U.Data[i] != want.U.Data[i] {
			t.Fatalf("concurrent absorb changed U at %d", i)
		}
	}
}

func TestSketchErrorsAndPanics(t *testing.T) {
	if _, err := NewSketch(0, 4, SketchOptions{}); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewSketch(10, 0, SketchOptions{}); err == nil {
		t.Fatal("expected error for d=0")
	}
	if _, err := NewSketch(10, 2, SketchOptions{Kind: SketchKind(99)}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	// Factorizing an empty stream: Y = 0 is rank-deficient but QR completes
	// the basis; the solve on C = QᵀΩ must still succeed or error cleanly,
	// never panic.
	sk, err := NewSketch(12, 2, SketchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sk.Factorize(); err == nil {
		for _, s := range res.Sigma {
			if s != 0 {
				t.Fatalf("empty stream produced nonzero sigma %v", res.Sigma)
			}
		}
	}

	sk2, _ := NewSketch(8, 2, SketchOptions{Seed: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for out-of-range chunk")
			}
		}()
		sk2.Absorb(RowChunk{RowLo: 7, RowPtr: []int64{0, 0, 0}})
	}()
}

func TestSketchKindString(t *testing.T) {
	if SketchSparseSign.String() != "sign" || SketchGaussian.String() != "gaussian" {
		t.Fatalf("kind names: %v %v", SketchSparseSign, SketchGaussian)
	}
}

func TestDefaultSketchOversample(t *testing.T) {
	if got := DefaultSketchOversample(128); got != 32 {
		t.Fatalf("d=128: %d", got)
	}
	if got := DefaultSketchOversample(8); got != 8 {
		t.Fatalf("d=8: %d", got)
	}
}

// TestRandomizedSVDSymmetricEquivalence pins the Symmetric satellite: on an
// exactly symmetric CSR the skip-transpose path is bit-identical to the
// transposing path (a sorted symmetric CSR transposes to itself bitwise).
func TestRandomizedSVDSymmetricEquivalence(t *testing.T) {
	a, _ := lowRankSparse(60, 4, 29)
	plain, err := RandomizedSVD(a, 4, Options{Seed: 7, Oversample: 2, PowerIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := RandomizedSVD(a, 4, Options{Seed: 7, Oversample: 2, PowerIters: 1, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.U.Data {
		if plain.U.Data[i] != sym.U.Data[i] {
			t.Fatalf("U differs at %d", i)
		}
	}
	for i := range plain.V.Data {
		if plain.V.Data[i] != sym.V.Data[i] {
			t.Fatalf("V differs at %d", i)
		}
	}
	for i := range plain.Sigma {
		if plain.Sigma[i] != sym.Sigma[i] {
			t.Fatalf("sigma differs at %d", i)
		}
	}
}

// TestTruncateColsAndEmbedDifferential pins the parallel rewrites against
// the original sequential element loops.
func TestTruncateColsAndEmbedDifferential(t *testing.T) {
	m := dense.NewMatrix(137, 9)
	m.FillGaussian(31)
	d := 5
	got := truncateCols(m, d)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < d; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("truncateCols differs at (%d,%d)", i, j)
			}
		}
	}
	if same := truncateCols(m, m.Cols); same != m {
		t.Fatal("truncateCols should return the input when d == Cols")
	}

	sigma := []float64{4, 2.5, 0.9, 0, 1e-12}
	res := &Result{U: got, Sigma: sigma}
	x := EmbedFromSVD(res)
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			root := 0.0
			if sigma[j] > 0 {
				root = math.Sqrt(sigma[j])
			}
			if want := got.At(i, j) * root; x.At(i, j) != want {
				t.Fatalf("EmbedFromSVD differs at (%d,%d): %v vs %v", i, j, x.At(i, j), want)
			}
		}
	}
}
