// Single-pass sketched factorization (the SketchNE direction): instead of
// the multi-pass randomized SVD in rsvd.go — which needs the full sparse
// matrix (and, without the Symmetric option, its transpose) resident for
// repeated SpMM passes — the matrix is consumed ONCE, as a stream of
// row chunks, against two fixed random test matrices Ω (n×k, the range
// sketch) and Ψ (n×l, the co-range sketch, l > k):
//
//	Y += A_chunk·Ω;  Z += A_chunk·Ψ     // the only pass over A
//	Q, _ = qr(Y)                        // range of A
//	X = (ΨᵀQ)† (ZᵀQ)                    // least-squares core, X ≈ QᵀAQ
//	X = (X+Xᵀ)/2; X = Û·Σ·V̂ᵀ           // tiny dense SVD
//	U = Q·Û, V = Q·V̂                    // lift, truncate to rank d
//
// The algebra is the practical sketching scheme of Tropp, Yurtsever,
// Udell & Cevher specialized to symmetric A: A ≈ QQᵀA together with
// AQ ≈ Q(QᵀAQ) gives ΨᵀAQ ≈ (ΨᵀQ)·(QᵀAQ), and ΨᵀA = Zᵀ by symmetry, so
// the core is the least-squares solution of an l×k system built entirely
// from streamed quantities — no second pass over A. The co-range sketch
// must be strictly taller than the range sketch: with l = k the system is
// square and the residual of A outside range(Q) is amplified by the inverse
// unchecked (the classical Halko §5.6 instability — singular-value
// estimates overshoot by large factors on flat spectra); with l − k on the
// order of k the pseudo-inverse damps it to a constant factor. NewSketch
// therefore fixes l = k + d + 1. Power iteration is impossible in one pass;
// the remaining accuracy gap is bought with oversampling, which is why
// DefaultSketchOversample is more generous than the multi-pass default
// (none).
//
// Determinism. Absorb writes only the Y and Z rows its chunk covers, each
// row accumulated sequentially in the chunk's entry order; chunks never
// split a row, so concurrent Absorb calls over disjoint chunks touch
// disjoint memory and the accumulators are independent of both absorption
// order and GOMAXPROCS. Everything downstream is either serial (QR, solve,
// Jacobi SVD) or fixed-geometry tree-reduced (MatMulATBDet, the sparse-sign
// projection), so for a fixed seed the factorization is bit-identical
// across worker counts — locked down by TestSketchBitIdentical*.
package svd

import (
	"fmt"
	"sync/atomic"

	"lightne/internal/dense"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// SketchKind selects the random test matrix of the single-pass sketch.
type SketchKind int

const (
	// SketchSparseSign (the default, and SketchNE's choice) draws s random
	// ±1 entries per row of Ω and of Ψ. Absorbing an entry costs 2·s ≪ k+l
	// adds instead of two dense axpys, and each test matrix stores 5·s bytes
	// per row instead of 8·k (8·l) — both the flop and the memory win that
	// make sketching strictly cheaper than the multi-pass path. The common
	// 1/√s normalization is omitted: it cancels between ΨᵀQ and ZᵀQ (and
	// scales Y without moving range(Y)), so Q, X and the factorization are
	// invariant.
	SketchSparseSign SketchKind = iota
	// SketchGaussian materializes dense n×k and n×l N(0,1) test matrices —
	// the classical choice with the sharpest theory, kept as a cross-check.
	// Costs k+l flops per absorbed entry and 8·(k+l) bytes per row.
	SketchGaussian
)

// String names the kind as the CLI spells it (-sketch-kind).
func (k SketchKind) String() string {
	switch k {
	case SketchSparseSign:
		return "sign"
	case SketchGaussian:
		return "gaussian"
	default:
		return fmt.Sprintf("SketchKind(%d)", int(k))
	}
}

// DefaultSignNNZ is the sparse-sign density s when SketchOptions.SignNNZ is
// unset: 8 nonzeros per row, SketchNE's regime (their s ∈ [8, 16]).
const DefaultSignNNZ = 8

// DefaultSketchOversample is the extra sketch width when
// SketchOptions.Oversample is unset: d/4, floored at 8. The single-pass
// scheme has no power iteration to sharpen the subspace, so unlike the
// multi-pass default (no oversampling) it always oversamples; d/4 keeps the
// resident sketch accumulators (n·(k+l) floats, see SketchWidths) strictly
// below the multi-pass path's five n×d for every d ≥ 32 (see
// core.EstimateMemory's sketch mode).
func DefaultSketchOversample(d int) int {
	v := d / 4
	if v < 8 {
		v = 8
	}
	return v
}

// SketchWidths reports the realized sketch geometry for an n×n matrix,
// target rank d and oversample (<= 0 applies the default): k = d+oversample
// columns in the range sketch Y and l = k+d+1 in the co-range sketch Z, both
// clamped to n. Exported so the memory planner prices the sketch mode with
// the exact widths NewSketch will use.
func SketchWidths(n, d, oversample int) (k, l int) {
	if d > n {
		d = n
	}
	if oversample <= 0 {
		oversample = DefaultSketchOversample(d)
	}
	k = d + oversample
	if k > n {
		k = n
	}
	l = k + d + 1
	if l > n {
		l = n
	}
	return k, l
}

// SketchOptions configures NewSketch.
type SketchOptions struct {
	// Seed drives the test matrix; fixed seed → bit-fixed factorization.
	Seed uint64
	// Kind picks the test-matrix family (zero value: SketchSparseSign).
	Kind SketchKind
	// Oversample adds extra sketch columns beyond the requested rank
	// (k = d + Oversample); <= 0 applies DefaultSketchOversample.
	Oversample int
	// SignNNZ is the ±1 entries per Ω row for SketchSparseSign; <= 0
	// applies DefaultSignNNZ. Clamped to the sketch width k.
	SignNNZ int
}

// RowChunk is a contiguous block of whole CSR rows handed to Absorb:
// row RowLo+i holds Cols/Vals[RowPtr[i]:RowPtr[i+1]] (RowPtr is zero-based
// within the chunk, len = rows+1). Chunks from one producer must cover
// disjoint row ranges; within a row, entry order fixes the float
// accumulation order, so producers that guarantee sorted columns (the
// sampler's DrainCSR stream) extend their bit-stability through the sketch.
type RowChunk struct {
	RowLo  int
	RowPtr []int64
	Cols   []uint32
	Vals   []float64
}

// Rows returns the number of rows the chunk covers.
func (c *RowChunk) Rows() int { return len(c.RowPtr) - 1 }

// NNZ returns the number of entries in the chunk.
func (c *RowChunk) NNZ() int64 {
	if len(c.RowPtr) == 0 {
		return 0
	}
	return c.RowPtr[len(c.RowPtr)-1]
}

// Sketch accumulates Y = A·Ω and Z = A·Ψ from streamed row chunks of a
// symmetric n×n sparse matrix A and factorizes the result without ever
// holding A. Absorb may be called concurrently for chunks covering disjoint
// row ranges.
type Sketch struct {
	n, d, k, l int
	kind       SketchKind

	y *dense.Matrix // n×k range accumulator, surrendered to Factorize
	z *dense.Matrix // n×l co-range accumulator
	// Gaussian test matrices (nil for sparse-sign).
	omega *dense.Matrix // n×k
	psi   *dense.Matrix // n×l

	// Sparse-sign test matrices: row v of Ω has ±1 at columns
	// signIdx[v·s : (v+1)·s] with signs from signNeg; psiIdx/psiNeg likewise
	// for Ψ (column space of width l).
	signIdx []uint32
	signNeg []bool
	psiIdx  []uint32
	psiNeg  []bool
	s       int

	nnz       atomic.Int64
	factorize atomic.Bool // Factorize consumed the accumulators
}

// NewSketch prepares a single-pass sketch for an n×n symmetric matrix and
// target rank d (clamped to n). The test matrix is generated immediately
// from per-row RNG streams, so two sketches with equal (n, d, options)
// absorb identically regardless of scheduling.
func NewSketch(n, d int, opt SketchOptions) (*Sketch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("svd: sketch needs a positive dimension, got n=%d", n)
	}
	if d <= 0 {
		return nil, fmt.Errorf("svd: sketch rank must be positive, got %d", d)
	}
	if d > n {
		d = n
	}
	k, l := SketchWidths(n, d, opt.Oversample)
	if d > n {
		d = n
	}
	sk := &Sketch{n: n, d: d, k: k, l: l, kind: opt.Kind,
		y: dense.NewMatrix(n, k), z: dense.NewMatrix(n, l)}
	// psiSeedSalt decorrelates Ψ's per-row streams from Ω's; the co-range
	// sketch must be statistically independent of the range sketch for the
	// least-squares core to damp the residual rather than refit it.
	const psiSeedSalt = 0x9e3779b97f4a7c15
	switch opt.Kind {
	case SketchGaussian:
		sk.omega = dense.NewMatrix(n, k)
		sk.omega.FillGaussian(opt.Seed)
		sk.psi = dense.NewMatrix(n, l)
		sk.psi.FillGaussian(opt.Seed ^ psiSeedSalt)
	case SketchSparseSign:
		s := opt.SignNNZ
		if s <= 0 {
			s = DefaultSignNNZ
		}
		if s > k {
			s = k
		}
		sk.s = s
		sk.signIdx, sk.signNeg = sparseSignRows(n, k, s, opt.Seed)
		sk.psiIdx, sk.psiNeg = sparseSignRows(n, l, s, opt.Seed^psiSeedSalt)
	default:
		return nil, fmt.Errorf("svd: unknown sketch kind %d", int(opt.Kind))
	}
	return sk, nil
}

// sparseSignRows draws s distinct ±1 column positions per row of an n×width
// sparse-sign test matrix from per-row RNG streams: row v is a pure function
// of (seed, v), independent of scheduling.
func sparseSignRows(n, width, s int, seed uint64) ([]uint32, []bool) {
	idx := make([]uint32, n*s)
	neg := make([]bool, n*s)
	par.ForRange(n, 64, func(lo, hi int) {
		var src rng.Source
		for v := lo; v < hi; v++ {
			src.Seed(seed, uint64(v))
			base := v * s
			for t := 0; t < s; t++ {
				// Rejection-sample a column not already used by this row
				// (s ≤ width, so a free column always exists).
				for {
					pos := uint32(src.Intn(width))
					dup := false
					for u := 0; u < t; u++ {
						if idx[base+u] == pos {
							dup = true
							break
						}
					}
					if !dup {
						idx[base+t] = pos
						break
					}
				}
				neg[base+t] = src.Uint64()&1 == 1
			}
		}
	})
	return idx, neg
}

// Dims reports the matrix dimension n and realized sketch width k.
func (sk *Sketch) Dims() (n, k int) { return sk.n, sk.k }

// AbsorbedNNZ returns the total entry count absorbed so far.
func (sk *Sketch) AbsorbedNNZ() int64 { return sk.nnz.Load() }

// Absorb accumulates Y[rows of c] += A_chunk·Ω and Z[rows of c] += A_chunk·Ψ.
// Rows are processed in parallel; each row's entries accumulate sequentially
// in chunk order, so the result is independent of GOMAXPROCS. Safe to call
// concurrently with other Absorb calls whose chunks cover disjoint row ranges
// (the producer contract); must not overlap Factorize.
func (sk *Sketch) Absorb(c RowChunk) {
	rows := c.Rows()
	if rows < 0 || c.RowLo < 0 || c.RowLo+rows > sk.n {
		panic(fmt.Sprintf("svd: Absorb chunk rows [%d,%d) outside matrix of %d rows",
			c.RowLo, c.RowLo+rows, sk.n))
	}
	if sk.factorize.Load() {
		panic("svd: Absorb after Factorize")
	}
	if rows == 0 {
		return
	}
	switch sk.kind {
	case SketchGaussian:
		par.For(rows, 8, func(i int) {
			yrow := sk.y.Row(c.RowLo + i)
			zrow := sk.z.Row(c.RowLo + i)
			for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
				w := c.Vals[p]
				om := sk.omega.Row(int(c.Cols[p]))
				for j, o := range om {
					yrow[j] += w * o
				}
				ps := sk.psi.Row(int(c.Cols[p]))
				for j, o := range ps {
					zrow[j] += w * o
				}
			}
		})
	default: // SketchSparseSign
		s := sk.s
		par.For(rows, 32, func(i int) {
			yrow := sk.y.Row(c.RowLo + i)
			zrow := sk.z.Row(c.RowLo + i)
			for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
				w := c.Vals[p]
				base := int(c.Cols[p]) * s
				for t := base; t < base+s; t++ {
					if sk.signNeg[t] {
						yrow[sk.signIdx[t]] -= w
					} else {
						yrow[sk.signIdx[t]] += w
					}
					if sk.psiNeg[t] {
						zrow[sk.psiIdx[t]] -= w
					} else {
						zrow[sk.psiIdx[t]] += w
					}
				}
			}
		})
	}
	sk.nnz.Add(c.NNZ())
}

// Factorize closes the stream and returns the rank-d approximate SVD of the
// absorbed matrix. The Y accumulator is consumed (its storage becomes QR
// scratch) and Z is released as soon as its projection is taken, so the
// sketch's dense peak stays at the two accumulators (n·(k+l) floats) plus
// the test matrices. A Sketch is single-use: Absorb and Factorize both panic
// after this returns.
func (sk *Sketch) Factorize() (*Result, error) {
	if sk.factorize.Swap(true) {
		panic("svd: Factorize called twice")
	}
	// Range basis. R is discarded: the core comes from the co-range sketch.
	q, _ := dense.QRInPlace(sk.y)
	sk.y = nil
	// m1 = ΨᵀQ (l×k) and m2 = ZᵀQ (l×k); both fixed-geometry deterministic.
	var m1 *dense.Matrix
	if sk.kind == SketchGaussian {
		m1 = dense.NewMatrix(sk.l, sk.k)
		dense.MatMulATBDet(m1, sk.psi, q)
		sk.psi, sk.omega = nil, nil
	} else {
		m1t := dense.NewMatrix(sk.k, sk.l)
		sk.signProject(m1t, q, sk.psiIdx, sk.psiNeg)
		m1 = m1t.Transpose()
		sk.signIdx, sk.signNeg, sk.psiIdx, sk.psiNeg = nil, nil, nil, nil
	}
	m2 := dense.NewMatrix(sk.l, sk.k)
	dense.MatMulATBDet(m2, sk.z, q)
	sk.z = nil
	// Least squares (ΨᵀQ)·X ≈ ZᵀQ via QR of the tall l×k system:
	// m1 = Q₂R₂, X = R₂⁻¹·(Q₂ᵀ·m2). The pseudo-inverse of the oversampled
	// system (l > k) is what damps the out-of-range residual of A.
	q2, r2 := dense.QRInPlace(m1)
	rhs := dense.NewMatrix(sk.k, sk.k)
	dense.MatMulATBDet(rhs, q2, m2)
	x, err := dense.SolveSquare(r2, rhs)
	if err != nil {
		return nil, fmt.Errorf("svd: sketch core solve: %w (increase Oversample, or the absorbed matrix is empty)", err)
	}
	// X estimates QᵀAQ, which is exactly symmetric for symmetric A;
	// symmetrizing removes the least-squares' asymmetric noise before the SVD.
	for i := 0; i < sk.k; i++ {
		for j := i + 1; j < sk.k; j++ {
			v := (x.At(i, j) + x.At(j, i)) / 2
			x.Set(i, j, v)
			x.Set(j, i, v)
		}
	}
	cu, sigma, cv := dense.SVD(x)
	u := dense.NewMatrix(sk.n, sk.k)
	dense.MatMul(u, q, cu)
	v := dense.NewMatrix(sk.n, sk.k)
	dense.MatMul(v, q, cv)
	return &Result{
		U:     truncateCols(u, sk.d),
		Sigma: sigma[:sk.d],
		V:     truncateCols(v, sk.d),
	}, nil
}

// signProject computes out = QᵀS (k×width) for a sparse-sign test matrix S
// given by (idx, neg): row v of S scatters ±Q[v,:] into the s columns it
// occupies. Fixed block geometry and a pairwise-tree combine, exactly like
// MatMulATBDet, keep it bit-identical across worker counts.
func (sk *Sketch) signProject(out *dense.Matrix, q *dense.Matrix, idx []uint32, neg []bool) {
	n, k, s := sk.n, sk.k, sk.s
	width := out.Cols
	nb := 64
	if nb > n {
		nb = n
	}
	size := (n + nb - 1) / nb
	nb = (n + size - 1) / size
	partials := make([][]float64, nb)
	par.For(nb, 1, func(bi int) {
		lo := bi * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		acc := make([]float64, k*width)
		for v := lo; v < hi; v++ {
			qv := q.Row(v)
			base := v * s
			for t := base; t < base+s; t++ {
				col := int(idx[t])
				if neg[t] {
					for a, qa := range qv {
						acc[a*width+col] -= qa
					}
				} else {
					for a, qa := range qv {
						acc[a*width+col] += qa
					}
				}
			}
		}
		partials[bi] = acc
	})
	dense.CombineTree(partials)
	copy(out.Data, partials[0])
}

// AbsorbCSR feeds an in-memory CSR (rowPtr global, len numRows+1) through
// Absorb in fixed-size chunks — the non-streaming convenience used by tests
// and by callers that already hold the matrix.
func (sk *Sketch) AbsorbCSR(rowPtr []int64, cols []uint32, vals []float64, maxChunkEntries int64) {
	numRows := len(rowPtr) - 1
	if numRows > sk.n {
		numRows = sk.n
	}
	if maxChunkEntries < 1 {
		maxChunkEntries = 1
	}
	lo := 0
	for lo < numRows {
		hi := lo + 1
		for hi < numRows && rowPtr[hi+1]-rowPtr[lo] <= maxChunkEntries {
			hi++
		}
		local := make([]int64, hi-lo+1)
		base := rowPtr[lo]
		for i := range local {
			local[i] = rowPtr[lo+i] - base
		}
		sk.Absorb(RowChunk{
			RowLo:  lo,
			RowPtr: local,
			Cols:   cols[base:rowPtr[hi]],
			Vals:   vals[base:rowPtr[hi]],
		})
		lo = hi
	}
}
