// Package svd implements the randomized SVD of Halko, Martinsson & Tropp,
// exactly following the paper's Algorithm 3 and its MKL-routine mapping:
//
//  1. sample Gaussian O (n×k) and P (k×k)    // vsRngGaussian
//  2. Y = Aᵀ·O                               // mkl_sparse_s_mm
//  3. orthonormalize Y                       // sgeqrf + sorgqr
//  4. B = A·Y                                // mkl_sparse_s_mm
//  5. Z = B·P                                // cblas_sgemm
//  6. orthonormalize Z                       // sgeqrf + sorgqr
//  7. C = Zᵀ·B                               // cblas_sgemm
//  8. SVD  C = U·Σ·Vᵀ                        // sgesvd
//  9. return Z·U, Σ, Y·V                     // cblas_sgemm
//
// Our kernels come from internal/dense and internal/sparse. Two optional
// robustness knobs extend the paper's algorithm: oversampling (factor a few
// extra columns and truncate) and subspace (power) iterations, both standard
// in the randomized-SVD literature and both defaulting to the paper's
// configuration (none).
package svd

import (
	"fmt"
	"math"

	"lightne/internal/dense"
	"lightne/internal/par"
	"lightne/internal/sparse"
)

// Options configures RandomizedSVD.
type Options struct {
	// Seed drives the Gaussian test matrices; fixed seed → fixed output.
	Seed uint64
	// Oversample adds extra sketch columns beyond the requested rank and
	// truncates the result. 0 follows the paper.
	Oversample int
	// PowerIters applies (A·Aᵀ)^q to the sketch before projecting, sharpening
	// the subspace when the spectrum decays slowly. 0 follows the paper.
	PowerIters int
	// Symmetric declares A = Aᵀ, letting every Aᵀ product reuse A instead of
	// materializing a.Transpose() — this halves the resident CSR memory. The
	// trunc-logged NetMF sparsifier qualifies exactly: both orientations of a
	// sample accumulate the identical fixed-point weight and the estimator
	// scaling is symmetric in (i, j), so its sorted CSR transposes to itself
	// bitwise and the result is bit-identical with the option on or off
	// (TestRandomizedSVDSymmetricEquivalence). Setting it for a matrix that
	// is not exactly symmetric silently computes the wrong factorization.
	Symmetric bool
}

// Result holds a truncated SVD A ≈ U·diag(Sigma)·Vᵀ.
type Result struct {
	U     *dense.Matrix // n×d, left singular vectors
	Sigma []float64     // d singular values, descending
	V     *dense.Matrix // n×d, right singular vectors
}

// RandomizedSVD computes a rank-d approximate SVD of the (square, typically
// symmetric) sparse matrix a. It returns an error on invalid shapes; d is
// clamped to the matrix dimension.
func RandomizedSVD(a *sparse.CSR, d int, opt Options) (*Result, error) {
	if a.NumRows != a.NumCols {
		return nil, fmt.Errorf("svd: matrix must be square, got %dx%d", a.NumRows, a.NumCols)
	}
	n := a.NumRows
	if d <= 0 {
		return nil, fmt.Errorf("svd: rank must be positive, got %d", d)
	}
	if n == 0 {
		return nil, fmt.Errorf("svd: empty matrix")
	}
	if d > n {
		d = n
	}
	k := d + opt.Oversample
	if k > n {
		k = n
	}

	at := a
	if !opt.Symmetric {
		at = a.Transpose()
	}

	// Step 1: Gaussian sketches.
	o := dense.NewMatrix(n, k)
	o.FillGaussian(opt.Seed)
	p := dense.NewMatrix(k, k)
	p.FillGaussian(opt.Seed + 0x9e3779b97f4a7c15)

	// Step 2: Y = Aᵀ·O.
	y := dense.NewMatrix(n, k)
	sparse.SpMM(y, at, o)

	// Optional subspace iteration: Y ← Aᵀ(A·Y), re-orthonormalizing.
	for q := 0; q < opt.PowerIters; q++ {
		y = dense.Orthonormalize(y)
		tmp := dense.NewMatrix(n, k)
		sparse.SpMM(tmp, a, y)
		sparse.SpMM(y, at, tmp)
	}

	// Step 3: orthonormalize Y.
	y = dense.Orthonormalize(y)

	// Step 4: B = A·Y.
	b := dense.NewMatrix(n, k)
	sparse.SpMM(b, a, y)

	// Step 5: Z = B·P.
	z := dense.NewMatrix(n, k)
	dense.MatMul(z, b, p)

	// Step 6: orthonormalize Z.
	z = dense.Orthonormalize(z)

	// Step 7: C = Zᵀ·B (k×k).
	c := dense.NewMatrix(k, k)
	dense.MatMulATB(c, z, b)

	// Step 8: SVD of the small projected matrix.
	cu, sigma, cv := dense.SVD(c)

	// Step 9: lift back: U = Z·CU, V = Y·CV; truncate to rank d.
	u := dense.NewMatrix(n, k)
	dense.MatMul(u, z, cu)
	v := dense.NewMatrix(n, k)
	dense.MatMul(v, y, cv)

	return &Result{
		U:     truncateCols(u, d),
		Sigma: sigma[:d],
		V:     truncateCols(v, d),
	}, nil
}

// truncateCols returns the first d columns of m (copying when d < m.Cols).
// Row-parallel: each row is one contiguous copy.
func truncateCols(m *dense.Matrix, d int) *dense.Matrix {
	if d == m.Cols {
		return m
	}
	out := dense.NewMatrix(m.Rows, d)
	par.For(m.Rows, 256, func(i int) {
		copy(out.Row(i), m.Row(i)[:d])
	})
	return out
}

// EmbedFromSVD converts an SVD result into the embedding X = U·Σ^{1/2}
// used by NetSMF and LightNE (paper §3.2). Row-parallel over contiguous row
// slices with the square roots hoisted; per-element work is independent, so
// the output is bit-identical to the sequential scaling.
func EmbedFromSVD(r *Result) *dense.Matrix {
	roots := make([]float64, len(r.Sigma))
	for j, s := range r.Sigma {
		if s > 0 {
			roots[j] = math.Sqrt(s)
		}
	}
	x := r.U.Clone()
	par.For(x.Rows, 256, func(i int) {
		row := x.Row(i)
		for j := range row {
			row[j] *= roots[j]
		}
	})
	return x
}
