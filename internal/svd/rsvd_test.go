package svd

import (
	"math"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/rng"
	"lightne/internal/sparse"
)

// lowRankSparse builds a symmetric n×n matrix of exact rank r as a sum of
// outer products over sparse support, returned both as CSR and dense.
func lowRankSparse(n, r int, seed uint64) (*sparse.CSR, *dense.Matrix) {
	s := rng.New(seed, 0)
	d := dense.NewMatrix(n, n)
	for k := 0; k < r; k++ {
		vec := make([]float64, n)
		for i := range vec {
			if s.Float64() < 0.2 {
				vec[i] = s.NormFloat64()
			}
		}
		scale := float64(r-k) * 3
		for i := 0; i < n; i++ {
			if vec[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if vec[j] == 0 {
					continue
				}
				// Parenthesized so the entry is bitwise symmetric in (i, j),
				// like the trunc-logged sparsifier the Symmetric option targets.
				d.Set(i, j, d.At(i, j)+scale*(vec[i]*vec[j]))
			}
		}
	}
	var us, vs []uint32
	var ws []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := d.At(i, j); v != 0 {
				us = append(us, uint32(i))
				vs = append(vs, uint32(j))
				ws = append(ws, v)
			}
		}
	}
	m, err := sparse.FromCOO(n, n, us, vs, ws)
	if err != nil {
		panic(err)
	}
	return m, d
}

func TestRandomizedSVDRecoversLowRank(t *testing.T) {
	n, r := 60, 4
	a, ad := lowRankSparse(n, r, 7)
	res, err := RandomizedSVD(a, r, Options{Seed: 1, Oversample: 4, PowerIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction U·Σ·Vᵀ should match A closely (exact rank r).
	us := res.U.Clone()
	for j, s := range res.Sigma {
		for i := 0; i < n; i++ {
			us.Set(i, j, us.At(i, j)*s)
		}
	}
	recon := dense.NewMatrix(n, n)
	dense.MatMul(recon, us, res.V.Transpose())
	var num, den float64
	for i := range recon.Data {
		dd := recon.Data[i] - ad.Data[i]
		num += dd * dd
		den += ad.Data[i] * ad.Data[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-6 {
		t.Fatalf("relative reconstruction error %g", rel)
	}
}

func TestRandomizedSVDSigmaDescending(t *testing.T) {
	a, _ := lowRankSparse(40, 6, 3)
	res, err := RandomizedSVD(a, 6, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(res.Sigma); j++ {
		if res.Sigma[j] > res.Sigma[j-1]+1e-9 {
			t.Fatalf("sigma not descending: %v", res.Sigma)
		}
	}
	for _, s := range res.Sigma {
		if s < 0 {
			t.Fatalf("negative sigma: %v", res.Sigma)
		}
	}
}

func TestRandomizedSVDDeterministic(t *testing.T) {
	a, _ := lowRankSparse(30, 3, 9)
	r1, err := RandomizedSVD(a, 3, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RandomizedSVD(a, 3, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.U.Data {
		if r1.U.Data[i] != r2.U.Data[i] {
			t.Fatal("same seed produced different U")
		}
	}
	for i := range r1.Sigma {
		if r1.Sigma[i] != r2.Sigma[i] {
			t.Fatal("same seed produced different sigma")
		}
	}
}

func TestRandomizedSVDErrors(t *testing.T) {
	rect := &sparse.CSR{NumRows: 2, NumCols: 3, RowPtr: []int64{0, 0, 0}}
	if _, err := RandomizedSVD(rect, 1, Options{}); err == nil {
		t.Fatal("expected error for non-square input")
	}
	sq, _ := lowRankSparse(5, 1, 1)
	if _, err := RandomizedSVD(sq, 0, Options{}); err == nil {
		t.Fatal("expected error for rank 0")
	}
	empty := &sparse.CSR{NumRows: 0, NumCols: 0, RowPtr: []int64{0}}
	if _, err := RandomizedSVD(empty, 1, Options{}); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}

func TestRankClampedToN(t *testing.T) {
	a, _ := lowRankSparse(6, 2, 4)
	res, err := RandomizedSVD(a, 100, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.U.Cols != 6 || len(res.Sigma) != 6 {
		t.Fatalf("rank not clamped: cols=%d sigma=%d", res.U.Cols, len(res.Sigma))
	}
}

func TestEmbedFromSVD(t *testing.T) {
	u := dense.FromSlice(2, 2, []float64{1, 0, 0, 1})
	res := &Result{U: u, Sigma: []float64{4, 0}, V: u.Clone()}
	x := EmbedFromSVD(res)
	if x.At(0, 0) != 2 {
		t.Fatalf("X[0,0]=%g want 2 (sqrt(4)*1)", x.At(0, 0))
	}
	if x.At(1, 1) != 0 {
		t.Fatalf("X[1,1]=%g want 0 (zero singular value)", x.At(1, 1))
	}
}

func TestUOrthonormalUnderOversampling(t *testing.T) {
	a, _ := lowRankSparse(50, 5, 11)
	res, err := RandomizedSVD(a, 5, Options{Seed: 3, Oversample: 3, PowerIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := res.U.Cols
	utu := dense.NewMatrix(d, d)
	dense.MatMulATB(utu, res.U, res.U)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(utu.At(i, j)-want) > 1e-8 {
				t.Fatalf("UtU[%d,%d]=%g", i, j, utu.At(i, j))
			}
		}
	}
}
