package svd

import (
	"math"
	"testing"
	"testing/quick"

	"lightne/internal/dense"
	"lightne/internal/rng"
	"lightne/internal/sparse"
)

// TestRandomizedSVDMatchesDenseTopK: on random sparse symmetric matrices,
// the randomized SVD with subspace iteration must recover the top-k
// singular values computed by the exact dense Jacobi SVD.
func TestRandomizedSVDMatchesDenseTopK(t *testing.T) {
	f := func(seed uint16) bool {
		s := rng.New(uint64(seed), 0)
		n := 20 + s.Intn(30)
		k := 3 + s.Intn(4)
		// Random symmetric sparse matrix.
		d := dense.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if s.Float64() < 0.2 {
					v := s.NormFloat64()
					d.Set(i, j, v)
					d.Set(j, i, v)
				}
			}
		}
		var us, vs []uint32
		var ws []float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v := d.At(i, j); v != 0 {
					us = append(us, uint32(i))
					vs = append(vs, uint32(j))
					ws = append(ws, v)
				}
			}
		}
		if len(us) == 0 {
			return true // empty matrix, nothing to compare
		}
		m, err := sparse.FromCOO(n, n, us, vs, ws)
		if err != nil {
			return false
		}
		res, err := RandomizedSVD(m, k, Options{Seed: uint64(seed) + 1, Oversample: 10, PowerIters: 4})
		if err != nil {
			return false
		}
		_, exact, _ := dense.SVD(d)
		for j := 0; j < k && j < len(exact); j++ {
			tol := 0.05*exact[0] + 1e-9
			if math.Abs(res.Sigma[j]-exact[j]) > tol {
				t.Logf("seed %d: sigma[%d]=%g exact=%g", seed, j, res.Sigma[j], exact[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
