package aggregate

import (
	"math"
	"sort"
	"testing"

	"lightne/internal/hashtable"
	"lightne/internal/rng"
)

// drainMap converts a Drain result into a key→weight map for comparison.
func drainMap(us, vs []uint32, ws []float64) map[uint64]float64 {
	m := make(map[uint64]float64, len(us))
	for i := range us {
		m[hashtable.Key(us[i], vs[i])] += ws[i]
	}
	return m
}

func TestAllStrategiesAgree(t *testing.T) {
	const workers, perWorker, distinct = 4, 20000, 700
	aggs := map[string]Aggregator{
		"list-histogram":    NewListHistogram(workers),
		"per-worker-tables": NewPerWorkerTables(workers),
		"shared-table":      NewSharedTable(distinct * 2),
	}
	results := map[string]map[uint64]float64{}
	for name, agg := range aggs {
		total := RunWorkload(agg, workers, perWorker, distinct, 7)
		if math.Abs(total-workers*perWorker) > 1e-3 {
			t.Fatalf("%s: total weight %.3f want %d", name, total, workers*perWorker)
		}
		us, vs, ws := drain(agg)
		results[name] = drainMap(us, vs, ws)
	}
	ref := results["list-histogram"]
	for name, got := range results {
		if len(got) != len(ref) {
			t.Fatalf("%s: %d distinct edges, reference %d", name, len(got), len(ref))
		}
		for k, w := range ref {
			if math.Abs(got[k]-w) > 1e-3 {
				t.Fatalf("%s: key %d weight %g want %g", name, k, got[k], w)
			}
		}
	}
}

// drain re-drains an aggregator (all strategies here tolerate a second
// drain returning the same data or empty; we re-run the workload instead).
func drain(agg Aggregator) (us, vs []uint32, ws []float64) {
	return agg.Drain()
}

func TestListHistogramSortsRuns(t *testing.T) {
	l := NewListHistogram(2)
	l.Add(0, 3, 1, 1)
	l.Add(1, 1, 1, 2)
	l.Add(0, 3, 1, 0.5)
	us, vs, ws := l.Drain()
	if len(us) != 2 {
		t.Fatalf("distinct=%d want 2", len(us))
	}
	m := drainMap(us, vs, ws)
	if math.Abs(m[hashtable.Key(3, 1)]-1.5) > 1e-12 {
		t.Fatalf("merged weight wrong: %v", m)
	}
}

func TestMemoryOrdering(t *testing.T) {
	// The paper's §5.2.4 point: list memory scales with samples, shared
	// table with distinct edges. With many samples over few edges the list
	// strategy must report much higher memory.
	const workers, perWorker, distinct = 4, 50000, 200
	list := NewListHistogram(workers)
	shared := NewSharedTable(distinct * 2)
	RunWorkload(list, workers, perWorker, distinct, 3)
	RunWorkload(shared, workers, perWorker, distinct, 3)
	if list.MemoryBytes() < 10*shared.MemoryBytes() {
		t.Fatalf("list memory %d not ≫ shared %d", list.MemoryBytes(), shared.MemoryBytes())
	}
	// Per-worker tables duplicate hot edges across workers.
	pw := NewPerWorkerTables(workers)
	RunWorkload(pw, workers, perWorker, distinct, 3)
	us, _, _ := pw.Drain()
	if len(us) != distinct {
		t.Fatalf("per-worker drain found %d distinct, want %d", len(us), distinct)
	}
}

func TestShardedBitIdenticalToUnsharded(t *testing.T) {
	// Sharding must not change a single bit of the fixed-point aggregates:
	// the same keys land in the same-seeded accumulation, just routed to
	// different shard tables.
	const workers, perWorker, distinct = 8, 30000, 900
	flat := NewSharedTable(distinct * 2)
	sharded := NewShardedTable(distinct*2, 8)
	if sharded.Shards() != 8 {
		t.Fatalf("Shards()=%d want 8", sharded.Shards())
	}
	RunWorkload(flat, workers, perWorker, distinct, 11)
	RunWorkload(sharded, workers, perWorker, distinct, 11)
	fu, fv, fw := flat.Drain()
	su, sv, sw := sharded.Drain()
	if len(fu) != len(su) {
		t.Fatalf("distinct edges differ: %d vs %d", len(fu), len(su))
	}
	got := drainMap(su, sv, sw)
	for i := range fu {
		k := hashtable.Key(fu[i], fv[i])
		if got[k] != fw[i] { // exact: fixed-point accumulation is bit-identical
			t.Fatalf("key %d: sharded %v flat %v", k, got[k], fw[i])
		}
	}
}

func TestShardedGrowsUnderBadHint(t *testing.T) {
	// A wrong capacity hint must still yield exact aggregates: each shard
	// grows independently without losing samples.
	const workers, perWorker, distinct = 4, 20000, 5000
	sharded := NewShardedTable(0, 4) // hint of zero: every shard must grow
	total := RunWorkload(sharded, workers, perWorker, distinct, 19)
	if math.Abs(total-workers*perWorker) > 1e-3 {
		t.Fatalf("total %.3f want %d", total, workers*perWorker)
	}
}

func TestShardedRoundsUpToPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ in, want int }{{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}} {
		if got := NewShardedTable(64, c.in).Shards(); got != c.want {
			t.Fatalf("NewShardedTable(_, %d).Shards()=%d want %d", c.in, got, c.want)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := newStream(5, 1)
	b := newStream(5, 1)
	var seqA, seqB []int
	for i := 0; i < 100; i++ {
		seqA = append(seqA, a.next(1000))
		seqB = append(seqB, b.next(1000))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestParExposed(t *testing.T) {
	if Par() < 1 {
		t.Fatal("worker count must be positive")
	}
}

// TestShardedDrainCSRBitIdentical: the sharded DrainCSR must be
// bit-identical to the unsharded one on the same sample stream — the full
// key sort erases shard routing and slot order, and fixed-point
// accumulation is exact, so (rowPtr, cols, ws) must match to the bit across
// shard counts.
func TestShardedDrainCSRBitIdentical(t *testing.T) {
	const workers, perWorker, distinct = 4, 30000, 900
	const numRows = 1 << 10 // keys from the workload stay below this
	var refPtr []int64
	var refCols []uint32
	var refWs []float64
	for _, shards := range []int{1, 2, 4, 16} {
		agg := NewShardedTable(distinct, shards)
		RunWorkload(agg, workers, perWorker, distinct, 99)
		rowPtr, cols, ws := agg.DrainCSR(numRows)
		if refPtr == nil {
			refPtr, refCols, refWs = rowPtr, cols, ws
			continue
		}
		if len(rowPtr) != len(refPtr) || len(cols) != len(refCols) {
			t.Fatalf("shards=%d: shape mismatch", shards)
		}
		for i := range refPtr {
			if rowPtr[i] != refPtr[i] {
				t.Fatalf("shards=%d: rowPtr[%d]=%d want %d", shards, i, rowPtr[i], refPtr[i])
			}
		}
		for i := range refCols {
			if cols[i] != refCols[i] || ws[i] != refWs[i] {
				t.Fatalf("shards=%d: entry %d (%d,%g) want (%d,%g)",
					shards, i, cols[i], ws[i], refCols[i], refWs[i])
			}
		}
	}
}

// TestSharedTableAddFixedMatchesAdd: the packed fast path must agree with
// the float-facing Add.
func TestSharedTableAddFixedMatchesAdd(t *testing.T) {
	a := NewShardedTable(100, 4)
	b := NewShardedTable(100, 4)
	for i := 0; i < 1000; i++ {
		u, v := uint32(i%37), uint32(i%53)
		a.Add(0, u, v, 1.5)
		b.AddFixed(hashtable.Key(u, v), hashtable.ToFixed(1.5))
	}
	if a.Len() != b.Len() {
		t.Fatalf("Len %d vs %d", a.Len(), b.Len())
	}
	am := drainMap(a.Drain())
	bm := drainMap(b.Drain())
	for k, w := range am {
		if bm[k] != w {
			t.Fatalf("key %x: %g vs %g", k, w, bm[k])
		}
	}
}

// TestSharedTableGetRoutesShards: Get must see what AddFixed wrote,
// whichever shard the key routed to.
func TestSharedTableGetRoutesShards(t *testing.T) {
	s := NewShardedTable(64, 8)
	for i := uint32(0); i < 500; i++ {
		s.AddFixed(hashtable.Key(i, i+1), hashtable.ToFixed(2))
	}
	for i := uint32(0); i < 500; i++ {
		w, ok := s.Get(i, i+1)
		if !ok || math.Abs(w-2) > 1e-9 {
			t.Fatalf("Get(%d,%d) = %g,%v want 2,true", i, i+1, w, ok)
		}
	}
	if _, ok := s.Get(9999, 9999); ok {
		t.Fatal("absent key reported present")
	}
}

// TestShardedDrainCSRPartialMultiset: partial drain over shards agrees with
// the sorted drain on row pointers and per-row multisets.
func TestShardedDrainCSRPartialMultiset(t *testing.T) {
	const numRows = 1 << 10
	agg := NewShardedTable(500, 8)
	RunWorkload(agg, 4, 20000, 800, 7)
	fullPtr, fullCols, fullWs := agg.DrainCSR(numRows)
	partPtr, partCols, partWs := agg.DrainCSRPartial(numRows)
	for i := range fullPtr {
		if fullPtr[i] != partPtr[i] {
			t.Fatalf("rowPtr[%d] mismatch", i)
		}
	}
	type cw struct {
		c uint32
		w float64
	}
	for r := 0; r < numRows; r++ {
		lo, hi := fullPtr[r], fullPtr[r+1]
		got := make([]cw, 0, hi-lo)
		for p := lo; p < hi; p++ {
			got = append(got, cw{partCols[p], partWs[p]})
		}
		sort.Slice(got, func(i, j int) bool { return got[i].c < got[j].c })
		for i, p := 0, lo; p < hi; i, p = i+1, p+1 {
			if got[i].c != fullCols[p] || got[i].w != fullWs[p] {
				t.Fatalf("row %d entry %d mismatch", r, i)
			}
		}
	}
}

// TestSharedTableAddFixedBatchBitIdentical: the shard-partitioned bulk insert
// must be bit-identical to routing every pair through AddFixed, on both the
// partition path (large batches) and the direct fallback (small batches).
func TestSharedTableAddFixedBatchBitIdentical(t *testing.T) {
	s := rng.New(9, 0)
	for _, n := range []int{100, 1000, 5 * shardPartGrain} { // direct and partitioned
		keys := make([]uint64, n)
		fixed := make([]uint64, n)
		for i := range keys {
			keys[i] = hashtable.Key(uint32(s.Intn(600)), uint32(s.Intn(600)))
			fixed[i] = uint64(1 + s.Intn(1<<18))
		}
		for _, shards := range []int{1, 4} {
			ref := NewShardedTable(2*n, shards)
			for i := range keys {
				ref.AddFixed(keys[i], fixed[i])
			}
			batch := NewShardedTable(16, shards) // tiny hint: shards grow mid-batch
			batch.AddFixedBatch(keys, fixed)
			if batch.Len() != ref.Len() {
				t.Fatalf("n=%d shards=%d: distinct %d want %d", n, shards, batch.Len(), ref.Len())
			}
			us, vs, ws := ref.Drain()
			got := drainMap(batch.Drain())
			for i := range us {
				k := hashtable.Key(us[i], vs[i])
				if got[k] != ws[i] {
					t.Fatalf("n=%d shards=%d key %d: batch %v want %v", n, shards, k, got[k], ws[i])
				}
			}
		}
	}
}
