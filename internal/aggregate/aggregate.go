// Package aggregate implements the sample-aggregation strategies LightNE
// *considered* for building the sparsifier (paper §4.2, "We considered
// several different techniques for this aggregation problem in the
// shared-memory setting"):
//
//  1. per-worker edge lists merged with a sort-based sparse histogram
//     (the GBBS histogram approach) — ListHistogram;
//  2. per-worker hash tables merged at the end — PerWorkerTables;
//  3. a single shared lock-free hash table with atomic xadd — SharedTable,
//     a thin adapter over internal/hashtable, the design the paper (and
//     this repository) ultimately selected; optionally sharded across a
//     power of two of sub-tables routed by high hash bits
//     (NewShardedTable), which confines grow-lock stalls to one shard when
//     the capacity hint is wrong.
//
// All three implement Aggregator and produce identical aggregates; the
// benchmarks in bench_test.go reproduce the paper's conclusion that the
// shared table is the fastest and most memory-efficient under realistic
// sample streams.
package aggregate

import (
	"sync"

	"lightne/internal/hashtable"
	"lightne/internal/par"
	"lightne/internal/radix"
)

// Aggregator accumulates weighted directed-edge samples from concurrent
// workers and drains the per-edge totals.
type Aggregator interface {
	// Add accumulates weight w onto (u, v) on behalf of the given worker
	// (dense id in [0, workers)). Implementations differ in whether worker
	// state is shared or private.
	Add(worker int, u, v uint32, w float64)
	// Drain returns the aggregated entries (unordered). Must not be called
	// concurrently with Add.
	Drain() (us, vs []uint32, ws []float64)
	// MemoryBytes estimates the aggregation state's peak footprint.
	MemoryBytes() int64
}

// record is one buffered sample in the list-based strategy.
type record struct {
	key uint64
	w   float64
}

// ListHistogram buffers every sample in per-worker lists and aggregates at
// drain time by sorting and run-length summing (the sparse-histogram
// approach). Memory grows with the number of samples, not distinct edges —
// the property that limited NetSMF's affordable sample count (§5.2.4).
type ListHistogram struct {
	lists [][]record
}

// NewListHistogram returns a list-based aggregator for the given worker
// count.
func NewListHistogram(workers int) *ListHistogram {
	return &ListHistogram{lists: make([][]record, workers)}
}

// Add appends to the worker's private list: no synchronization at all.
func (l *ListHistogram) Add(worker int, u, v uint32, w float64) {
	l.lists[worker] = append(l.lists[worker], record{hashtable.Key(u, v), w})
}

// Drain concatenates all lists and aggregates with the parallel radix
// group-sum (the semisort/partial-radix-sort step the paper cites, §4.2).
func (l *ListHistogram) Drain() (us, vs []uint32, ws []float64) {
	var total int
	for _, lst := range l.lists {
		total += len(lst)
	}
	keys := make([]uint64, 0, total)
	vals := make([]float64, 0, total)
	for _, lst := range l.lists {
		for _, r := range lst {
			keys = append(keys, r.key)
			vals = append(vals, r.w)
		}
	}
	n := radix.GroupSum(keys, vals)
	us = make([]uint32, n)
	vs = make([]uint32, n)
	ws = make([]float64, n)
	for i := 0; i < n; i++ {
		us[i], vs[i] = hashtable.UnpackKey(keys[i])
		ws[i] = vals[i]
	}
	return us, vs, ws
}

// MemoryBytes counts the buffered records (16 bytes each).
func (l *ListHistogram) MemoryBytes() int64 {
	var n int64
	for _, lst := range l.lists {
		n += int64(cap(lst)) * 16
	}
	return n
}

// PerWorkerTables keeps one private map per worker and merges at drain
// time — NetSMF's strategy ("maintains a thread-local sparsifier in each
// thread and merges them at the end", §5.2.4). Distinct edges sampled by
// k workers are stored k times, the duplication the shared table avoids.
type PerWorkerTables struct {
	tables []map[uint64]float64
}

// NewPerWorkerTables returns a per-worker-map aggregator.
func NewPerWorkerTables(workers int) *PerWorkerTables {
	t := &PerWorkerTables{tables: make([]map[uint64]float64, workers)}
	for i := range t.tables {
		t.tables[i] = make(map[uint64]float64)
	}
	return t
}

// Add updates the worker's private map: no synchronization.
func (t *PerWorkerTables) Add(worker int, u, v uint32, w float64) {
	t.tables[worker][hashtable.Key(u, v)] += w
}

// Drain merges all maps.
func (t *PerWorkerTables) Drain() (us, vs []uint32, ws []float64) {
	merged := make(map[uint64]float64)
	for _, m := range t.tables {
		for k, w := range m {
			merged[k] += w
		}
	}
	for k, w := range merged {
		u, v := hashtable.UnpackKey(k)
		us = append(us, u)
		vs = append(vs, v)
		ws = append(ws, w)
	}
	return us, vs, ws
}

// MemoryBytes estimates map storage: ~48 bytes per entry per worker copy
// (Go map overhead on a 16-byte payload).
func (t *PerWorkerTables) MemoryBytes() int64 {
	var n int64
	for _, m := range t.tables {
		n += int64(len(m)) * 48
	}
	return n
}

// SharedTable adapts internal/hashtable.Table to the Aggregator interface:
// the design the paper selected. It optionally splits the key space across
// a power-of-two number of shards routed by the high bits of the table hash
// (NewShardedTable). Sharding changes nothing semantically — fixed-point
// accumulation is exact and commutative, so a sharded and an unsharded
// aggregator produce bit-identical aggregates — but when the caller's
// capacity hint is wrong, a grow stalls only the 1/shards fraction of
// inserts routed to the full shard instead of every worker in the system.
type SharedTable struct {
	shards    []*hashtable.Table
	shardBits uint
}

// NewSharedTable returns a shared-table aggregator presized for
// capacityHint distinct edges.
func NewSharedTable(capacityHint int) *SharedTable {
	return NewShardedTable(capacityHint, 1)
}

// NewShardedTable returns a shared-table aggregator split into shards
// (rounded up to a power of two, minimum 1), each presized for its share of
// capacityHint distinct edges.
func NewShardedTable(capacityHint, shards int) *SharedTable {
	if shards < 1 {
		shards = 1
	}
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	n := 1 << bits
	s := &SharedTable{shards: make([]*hashtable.Table, n), shardBits: bits}
	perShard := (capacityHint + n - 1) / n
	for i := range s.shards {
		s.shards[i] = hashtable.New(perShard)
	}
	return s
}

// Add accumulates concurrently via CAS + xadd; the worker id is unused.
func (s *SharedTable) Add(_ int, u, v uint32, w float64) {
	s.AddFixed(hashtable.Key(u, v), hashtable.ToFixed(w))
}

// AddFixed accumulates a fixed-point weight onto a packed key, routing it to
// its shard — the sampler-facing hot path, signature-identical to
// hashtable.Table.AddFixed so a sharded aggregator drops into the sampling
// loop unchanged.
func (s *SharedTable) AddFixed(key, fixed uint64) {
	s.shards[hashtable.ShardOf(key, s.shardBits)].AddFixed(key, fixed)
}

// shardPartGrain is the per-chunk length of the shard-partition counting and
// scatter passes in AddFixedBatch.
const shardPartGrain = 4096

// addFixedBatchDirect is the unpartitioned fallback: route every pair to its
// shard individually, in parallel chunks. Used for single-shard tables and
// batches too small to amortize a partition pass.
func (s *SharedTable) addFixedBatchDirect(keys, fixed []uint64) {
	par.ForRange(len(keys), shardPartGrain/2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.AddFixed(keys[i], fixed[i])
		}
	})
}

// AddFixedBatch accumulates every (key, fixed-point weight) pair. Large
// batches are radix-partitioned on hashtable.ShardOf first — per-chunk shard
// counts, a scan for stable offsets, and a scatter into shard-contiguous
// scratch — so that each shard's inserts run on a single worker: the CAS/xadd
// probes of different workers never touch the same shard and atomic
// contention collapses to zero. Equivalent to calling AddFixed per pair
// (accumulation is commutative), and safe for concurrent use with AddFixed.
// len(keys) must equal len(fixed).
func (s *SharedTable) AddFixedBatch(keys, fixed []uint64) {
	if len(keys) != len(fixed) {
		panic("aggregate: keys and fixed must have equal length")
	}
	n := len(keys)
	nShards := len(s.shards)
	if nShards == 1 {
		s.shards[0].AddFixedBatch(keys, fixed)
		return
	}
	if n < 4*shardPartGrain {
		s.addFixedBatchDirect(keys, fixed)
		return
	}
	bounds := par.Blocks(n, shardPartGrain)
	nb := len(bounds) - 1
	// counts[b*nShards+sh]: pairs in chunk b routed to shard sh.
	counts := make([]int64, nb*nShards)
	par.ForBlocks(bounds, func(b, lo, hi int) {
		row := counts[b*nShards : (b+1)*nShards]
		for i := lo; i < hi; i++ {
			row[hashtable.ShardOf(keys[i], s.shardBits)]++
		}
	})
	// Stable offsets, shard-major: shard sh's region is contiguous and chunk
	// order is preserved within it.
	offs := make([]int64, nShards*nb)
	var total int64
	for sh := 0; sh < nShards; sh++ {
		for b := 0; b < nb; b++ {
			offs[sh*nb+b] = total
			total += counts[b*nShards+sh]
		}
	}
	kbuf := make([]uint64, n)
	fbuf := make([]uint64, n)
	par.ForBlocks(bounds, func(b, lo, hi int) {
		next := make([]int64, nShards)
		for sh := 0; sh < nShards; sh++ {
			next[sh] = offs[sh*nb+b]
		}
		for i := lo; i < hi; i++ {
			sh := hashtable.ShardOf(keys[i], s.shardBits)
			p := next[sh]
			next[sh]++
			kbuf[p] = keys[i]
			fbuf[p] = fixed[i]
		}
	})
	par.For(nShards, 1, func(sh int) {
		lo := offs[sh*nb]
		hi := total
		if sh+1 < nShards {
			hi = offs[(sh+1)*nb]
		}
		t := s.shards[sh]
		for i := lo; i < hi; i++ {
			t.AddFixed(kbuf[i], fbuf[i])
		}
	})
}

// Get returns the accumulated weight for (u, v) and whether it is present.
// Safe for concurrent use with Add.
func (s *SharedTable) Get(u, v uint32) (float64, bool) {
	key := hashtable.Key(u, v)
	return s.shards[hashtable.ShardOf(key, s.shardBits)].Get(u, v)
}

// Len returns the number of distinct keys across all shards.
func (s *SharedTable) Len() int {
	n := 0
	for _, t := range s.shards {
		n += t.Len()
	}
	return n
}

// Drain merges all shards with one exactly-sized allocation: per-shard
// lengths, an exclusive scan for shard offsets, then every shard drains in
// parallel into its disjoint region (each shard's drain is itself the
// two-pass parallel fill).
func (s *SharedTable) Drain() (us, vs []uint32, ws []float64) {
	if len(s.shards) == 1 {
		return s.shards[0].Drain()
	}
	offsets := make([]int64, len(s.shards))
	for i, t := range s.shards {
		offsets[i] = int64(t.Len())
	}
	total := par.ExclusiveScan(offsets)
	us = make([]uint32, total)
	vs = make([]uint32, total)
	ws = make([]float64, total)
	fns := make([]func(), len(s.shards))
	for i := range s.shards {
		i := i
		fns[i] = func() {
			lo := offsets[i]
			s.shards[i].DrainInto(us[lo:], vs[lo:], ws[lo:])
		}
	}
	par.Do(fns...)
	return us, vs, ws
}

// drainKeys merges every shard's (packed key, weight) pairs into one pair
// of exactly-sized arrays: per-shard lengths, an exclusive scan for shard
// offsets, then all shards drain in parallel into disjoint regions.
func (s *SharedTable) drainKeys() (keys []uint64, ws []float64) {
	if len(s.shards) == 1 {
		return s.shards[0].DrainKeys()
	}
	offsets := make([]int64, len(s.shards))
	for i, t := range s.shards {
		offsets[i] = int64(t.Len())
	}
	total := par.ExclusiveScan(offsets)
	keys = make([]uint64, total)
	ws = make([]float64, total)
	fns := make([]func(), len(s.shards))
	for i := range s.shards {
		i := i
		fns[i] = func() {
			lo := offsets[i]
			s.shards[i].DrainKeysInto(keys[lo:], ws[lo:])
		}
	}
	par.Do(fns...)
	return keys, ws
}

// DrainCSR merges all shards and groups the entries by source vertex into
// CSR arrays with the fully-sorted radix grouping — bit-identical to what an
// unsharded table holding the same aggregate would produce, because the full
// key sort erases shard routing and slot order. Must not run concurrently
// with Add.
func (s *SharedTable) DrainCSR(numRows int) (rowPtr []int64, cols []uint32, ws []float64) {
	keys, ws := s.drainKeys()
	return hashtable.GroupKeysCSR(keys, ws, numRows)
}

// DrainCSRPartial is DrainCSR with partition-only grouping: columns within a
// row stay in shard-drain order. Safe for SpMM-only consumers; see
// radix.GroupCSRPartial.
func (s *SharedTable) DrainCSRPartial(numRows int) (rowPtr []int64, cols []uint32, ws []float64) {
	keys, ws := s.drainKeys()
	return hashtable.GroupKeysCSRPartial(keys, ws, numRows)
}

// MemoryBytes returns the aggregate footprint across shards.
func (s *SharedTable) MemoryBytes() int64 {
	var n int64
	for _, t := range s.shards {
		n += t.MemoryBytes()
	}
	return n
}

// PeakMemoryBytes sums each shard's storage high-water mark (including
// grow transients). Shards grow independently, so the sum slightly
// overstates the instantaneous peak unless every shard grew at once — a
// conservative bound, which is the useful direction for capacity planning.
func (s *SharedTable) PeakMemoryBytes() int64 {
	var n int64
	for _, t := range s.shards {
		n += t.PeakMemoryBytes()
	}
	return n
}

// Shards reports the shard count (1 for the unsharded mode).
func (s *SharedTable) Shards() int { return len(s.shards) }

// RunWorkload drives an aggregator with a deterministic synthetic sample
// stream (nWorkers × perWorker samples over a keyspace with the given
// number of distinct edges) and returns total drained weight. Used by
// tests and benchmarks to compare strategies on identical input.
func RunWorkload(agg Aggregator, workers, perWorker, distinct int, seed uint64) float64 {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			s := newStream(seed, uint64(id))
			for i := 0; i < perWorker; i++ {
				k := s.next(distinct)
				agg.Add(id, uint32(k), uint32(k>>4), 1)
			}
		}(w)
	}
	wg.Wait()
	_, _, ws := agg.Drain()
	var total float64
	for _, w := range ws {
		total += w
	}
	return total
}

// stream is a tiny deterministic generator decoupled from internal/rng to
// keep this package's dependencies minimal.
type stream struct{ state uint64 }

func newStream(seed, id uint64) *stream {
	return &stream{state: seed*0x9e3779b97f4a7c15 + id + 1}
}

func (s *stream) next(n int) int {
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	return int(s.state % uint64(n))
}

// Par ensures the package exposes the worker count used by benchmarks.
func Par() int { return par.Workers() }
