package aggregate

import (
	"fmt"
	"testing"

	"lightne/internal/par"
)

// BenchmarkAggregate drives each aggregation strategy with the same
// synthetic sample stream (paper §4.2 / §5.2.4: the shared table should win
// on time and memory) and reports drained-edge throughput. Run via
// `make bench-drain` and compare with benchstat.
func BenchmarkAggregate(b *testing.B) {
	const perWorker, distinct = 100000, 1 << 16
	workers := par.Workers()
	strategies := []struct {
		name string
		make func() Aggregator
	}{
		{"list-histogram", func() Aggregator { return NewListHistogram(workers) }},
		{"per-worker-tables", func() Aggregator { return NewPerWorkerTables(workers) }},
		{"shared-table", func() Aggregator { return NewSharedTable(distinct * 2) }},
		{"sharded-table-8", func() Aggregator { return NewShardedTable(distinct*2, 8) }},
		{"sharded-table-8-bad-hint", func() Aggregator { return NewShardedTable(64, 8) }},
		{"shared-table-bad-hint", func() Aggregator { return NewSharedTable(64) }},
	}
	for _, s := range strategies {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agg := s.make()
				total := RunWorkload(agg, workers, perWorker, distinct, uint64(i))
				if total <= 0 {
					b.Fatal("empty aggregate")
				}
			}
			b.ReportMetric(float64(workers*perWorker), "samples/op")
		})
	}
}

// BenchmarkShardedDrain isolates the merge-from-shards drain path.
func BenchmarkShardedDrain(b *testing.B) {
	const distinct = 1 << 18
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			agg := NewShardedTable(distinct, shards)
			for i := 0; i < distinct; i++ {
				agg.Add(0, uint32(i), uint32(i>>3), 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				us, _, _ := agg.Drain()
				if len(us) != distinct {
					b.Fatalf("drained %d want %d", len(us), distinct)
				}
			}
		})
	}
}
